//! The long-lived solving service: one [`Engine`] owns the decision
//! cache, the budget policy, and the cumulative accounting that every
//! entry point shares.
//!
//! Before this module existed, each entry point (`pipeline::solve`,
//! `batch::solve_batch`, every `tdq` subcommand) rebuilt the
//! canonicalization cache and budget plumbing per invocation and threw all
//! warmth away between calls. The `Engine` inverts that: it is a
//! thread-safe, long-lived object that requests flow *through*:
//!
//! * a bounded, sharded [`DecisionCache`] keyed by
//!   [`td_core::canon::CanonKey`] — verdicts survive across requests, so a
//!   duplicate-heavy request stream settles each isomorphism class once
//!   per process, not once per call;
//! * a [`BudgetPolicy`] that mints a per-request [`Ticket`] — the budgets
//!   for the two certificate searches (request overrides clamped to the
//!   policy's caps) plus a fresh [`Cancellation`] token registered with
//!   the engine so [`Engine::shutdown`] can wind down every in-flight
//!   request cooperatively;
//! * **single-flight** deduplication for [`Engine::decide`]: concurrent
//!   requests for the same canonical key block on the one solver run
//!   instead of racing it, which makes the cache-hit accounting
//!   deterministic (equal to a sequential replay of the same requests);
//! * cumulative [`EngineStats`] counted on [`td_core::budget::Meter`]s —
//!   requests, hits, solver runs, evictions, and total search spend.
//!
//! The one-shot paths are thin wrappers over an ephemeral engine
//! ([`crate::pipeline::solve_with_opts`] constructs one per call), and the
//! persistent paths (`tdq serve`, warm batch streams) hold one engine for
//! the process lifetime — both execute exactly this code.

// The engine is the shared request path of every serve worker: a panic
// here poisons cross-request state (caches, the session registry). The
// td-lint panic-path pass enforces panic-freedom lexically; the clippy
// pair keeps `cargo clippy` aligned with it.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Instant;

use td_core::budget::{Cancellation, Meter};
use td_core::canon::{canon_key, system_key, system_key_with, CanonKey, CANON_SCHEME_VERSION};
use td_core::chase::{ChaseBudget, ChaseEngine, ChaseOutcome, ChasePolicy, ChaseState, Goal};
use td_core::inference::{self, freeze, InferenceVerdict};
use td_core::schema::Schema;
use td_core::td::Td;
use td_semigroup::normalize::{normalize, Normalized};
use td_semigroup::presentation::Presentation;

use crate::batch::{compress, from_cached, solve_batch_core, BatchRun, BatchVerdict, ItemOutcome};
use crate::cache::{CachedOutcome, CachedVerdict, DecisionCache};
use crate::deps::ReductionSystem;
use crate::error::{RedError, Result};
use crate::pipeline::{
    solve_prepared, solve_with_opts_on, Budgets, PhaseTimings, PipelineOutcome, PipelineRun,
    SolveOptions, SpendReport,
};

/// Construction-time knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Default budgets for the two certificate searches; also the caps a
    /// per-request override is clamped to (see [`BudgetPolicy::mint`]).
    pub budgets: Budgets,
    /// Scheduling mode and homomorphism strategy used for every solve.
    pub opts: SolveOptions,
    /// Worker threads for [`Engine::solve_batch`] (clamped to at least 1).
    pub jobs: usize,
    /// Shard count of the decision cache.
    pub cache_shards: usize,
    /// Per-shard entry capacity of the decision cache (see
    /// [`crate::cache::DEFAULT_SHARD_CAPACITY`]).
    pub cache_cap: usize,
    /// Maximum number of concurrently open [`Session`]s; opening one past
    /// the bound evicts the least-recently-used session (clamped to at
    /// least 1).
    pub max_sessions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            budgets: Budgets::default(),
            opts: SolveOptions::default(),
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_shards: 16,
            cache_cap: crate::cache::DEFAULT_SHARD_CAPACITY,
            max_sessions: 64,
        }
    }
}

/// Per-request budget overrides, as carried by the NDJSON protocol. Each
/// field replaces the corresponding cap in the policy's base budgets —
/// clamped so a request can *shrink* its budgets but never exceed the
/// policy's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestBudget {
    /// Cap on distinct words the derivation search may visit.
    pub derivation_states: Option<usize>,
    /// Cap on nodes the finite-model search may visit.
    pub model_nodes: Option<u64>,
}

/// The engine's budget authority: owns the base [`Budgets`] every request
/// gets by default and mints per-request [`Ticket`]s, clamping any
/// request-supplied overrides to the base caps.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPolicy {
    base: Budgets,
}

impl BudgetPolicy {
    /// A policy handing out `base` to every request.
    pub fn new(base: Budgets) -> Self {
        Self { base }
    }

    /// The default budgets (and the caps overrides are clamped to).
    pub fn base(&self) -> &Budgets {
        &self.base
    }

    /// Mints the effective budgets for one request: the base, with any
    /// override applied but clamped to the base value — a request may ask
    /// for *less* search than the policy allows, never more.
    pub fn mint(&self, req: Option<RequestBudget>) -> Budgets {
        let mut budgets = self.base;
        if let Some(req) = req {
            if let Some(states) = req.derivation_states {
                budgets.derivation.max_states = states.min(self.base.derivation.max_states);
            }
            if let Some(nodes) = req.model_nodes {
                budgets.model.max_nodes = nodes.min(self.base.model.max_nodes);
            }
        }
        budgets
    }
}

/// What one request runs under: its effective budgets and its
/// cooperative-cancellation token. Tokens are minted per request and
/// registered with the engine, so [`Engine::shutdown`] reaches every
/// in-flight search.
#[derive(Debug)]
pub struct Ticket {
    /// Effective budgets for this request.
    pub budgets: Budgets,
    cancel: Arc<Cancellation>,
}

impl Ticket {
    /// The request's cancellation token.
    pub fn cancellation(&self) -> &Cancellation {
        &self.cancel
    }
}

/// Cumulative accounting across an engine's lifetime. All counters are
/// monotone except [`EngineStats::keys_cached`], which evictions can
/// shrink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Implication questions received: one per [`Engine::decide`] or
    /// [`Engine::run_full`] call, one per batch item, one per redundancy
    /// analysis.
    pub requests: u64,
    /// Requests answered from the decision cache (cross-request warmth
    /// plus within-batch dedup).
    pub cache_hits: u64,
    /// Racing-solver runs actually executed.
    pub solved: u64,
    /// Among `solved`, the runs the axiom-driven fast-path prescreen
    /// settled before either certificate search started (stage 0 of the
    /// decide tier: fingerprint memo → cache → **fastpath** → full
    /// solve). These runs report zero chase/model spend.
    pub fastpath_hits: u64,
    /// Verdicts currently resident in the decision cache.
    pub keys_cached: usize,
    /// Entries evicted from the cache to bound residency.
    pub evictions: u64,
    /// Total distinct words visited by derivation searches (winners exact,
    /// losers truncated — a lower bound, see
    /// [`crate::pipeline::SpendReport`]).
    pub derivation_states: u64,
    /// Total nodes visited by finite-model searches (same caveat).
    pub model_nodes: u64,
}

/// The outcome of [`Engine::load_snapshot`]: how much warmth was actually
/// imported. `keys_skipped_version == 0` on a same-scheme load;
/// `keys_loaded == 0` when the snapshot was written under a different
/// canon-scheme version and was therefore rejected wholesale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Entries merged into the decision cache.
    pub keys_loaded: usize,
    /// Entries skipped because the snapshot's canon-scheme version differs
    /// from this build's — their keys are not comparable to ours.
    pub keys_skipped_version: usize,
}

/// The engine's internal meters ([`EngineStats`] is their snapshot).
#[derive(Debug, Default)]
struct Counters {
    requests: Meter,
    cache_hits: Meter,
    solved: Meter,
    fastpath_hits: Meter,
    derivation_states: Meter,
    model_nodes: Meter,
}

/// One settled answer from [`Engine::decide`]: the verdict plus its
/// provenance (canonical key, spend, whether the cache answered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The canonical key of the instance (equal keys ⇔ isomorphic
    /// questions).
    pub key: CanonKey,
    /// The verdict.
    pub verdict: BatchVerdict,
    /// Spend accounting: the run that settled the verdict (for a cache
    /// hit, the *original* run's spend).
    pub spend: SpendReport,
    /// `true` when the decision cache answered without running the solver.
    pub cached: bool,
    /// Wall-clock phase timings of the solving run; all zero for a cache
    /// hit.
    pub timings: PhaseTimings,
}

/// The verdict of one [`Engine::session_ask`]: like a batch verdict, but
/// produced by the session's *incremental* chase — the counters are
/// cumulative across every resume the stored [`ChaseState`] went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionVerdict {
    /// Σ ⊨ τ: the chase of τ's frozen tableau reached the goal row.
    Implied {
        /// Triggers fired to reach the goal (cumulative across resumes).
        chase_steps: usize,
    },
    /// Σ ⊭ τ: the chase terminated without the goal — its final state is a
    /// finite countermodel.
    NotImplied {
        /// Rows in the countermodel.
        model_rows: usize,
    },
    /// The per-ask chase budget ran out before either certificate. Asking
    /// again grants a fresh increment and resumes where this ask stopped.
    Unknown {
        /// Triggers fired so far (cumulative across resumes).
        chase_steps: usize,
        /// Rows in the suspended state.
        state_rows: usize,
    },
}

/// A suspended per-goal chase: the resumable fixpoint computation plus the
/// goal pattern it is driving toward.
#[derive(Debug)]
struct GoalChase {
    state: ChaseState,
    goal: Goal,
}

/// The mutable contents of a [`Session`]: the dependency set Σ and the
/// per-goal incremental machinery.
#[derive(Debug, Default)]
struct SessionInner {
    /// The session's schema, fixed by the first dependency or ask.
    schema: Option<Schema>,
    /// Σ, in insertion order, keyed by the (unique) dependency name. Order
    /// matters: it is the resume prefix of every stored [`ChaseState`].
    deps: Vec<(String, Td)>,
    /// Suspended chases keyed by the goal's [`canon_key`] — isomorphic
    /// goals share one resumable fixpoint.
    chases: HashMap<CanonKey, GoalChase>,
    /// Settled verdicts for the *current* Σ, invalidated monotonically on
    /// dependency changes (`Unknown` is never cached).
    verdicts: HashMap<CanonKey, SessionVerdict>,
}

/// A named incremental Σ-session owned by an [`Engine`]: a dependency set
/// that evolves across requests, with per-goal [`ChaseState`]s that are
/// *resumed* — not recomputed — when Σ grows.
///
/// All session state sits behind one internal mutex, so concurrent
/// operations on the same session serialize: every ask observes a
/// consistent Σ, and interleaved add/ask streams behave like some serial
/// order of the same operations.
///
/// Verdict-cache invalidation exploits that implication is monotone in Σ:
///
/// * **adding** a dependency preserves every `Implied` verdict (the old
///   proof still stands) but drops `NotImplied` ones (the countermodel may
///   violate the new premise); suspended chases are *kept* — the appended
///   TD joins them through the resume protocol;
/// * **removing** a dependency preserves `NotImplied` verdicts (the
///   countermodel still satisfies the smaller Σ) but drops `Implied` ones,
///   and discards every suspended chase — derived rows cannot be
///   retracted, so the next ask re-chases from scratch.
#[derive(Debug)]
pub struct Session {
    id: String,
    inner: Mutex<SessionInner>,
}

impl Session {
    /// The session's registry id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

/// The id-keyed session registry: bounded, LRU-evicting.
#[derive(Debug)]
struct SessionRegistry {
    map: HashMap<String, Arc<Session>>,
    /// LRU order, front = least recently used. Touched by every session
    /// operation.
    order: VecDeque<String>,
    max: usize,
    opened: u64,
    evictions: u64,
}

/// A snapshot of the session registry's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently open.
    pub open: usize,
    /// Sessions opened over the engine's lifetime.
    pub opened: u64,
    /// Sessions evicted by the LRU bound (closes are not evictions).
    pub evictions: u64,
}

/// A long-lived, thread-safe solving service: share one per process (or
/// per tenant) by reference and route every implication question through
/// it. See the module docs for the ownership picture.
#[derive(Debug)]
pub struct Engine {
    cache: DecisionCache,
    policy: BudgetPolicy,
    opts: SolveOptions,
    jobs: usize,
    counters: Counters,
    /// Flipped once by [`Engine::shutdown`]; minting refuses afterwards.
    root: Cancellation,
    /// Cancellation tokens of in-flight requests (pruned lazily).
    inflight: Mutex<Vec<Weak<Cancellation>>>,
    /// Canonical keys currently being solved by a [`Engine::decide`] call
    /// (the single-flight gate)…
    pending: Mutex<HashSet<CanonKey>>,
    /// …and the condvar its waiters block on.
    settled: Condvar,
    /// Named incremental Σ-sessions (see [`Session`]).
    sessions: Mutex<SessionRegistry>,
    /// Canonicalization memo: exact structural fingerprint of a reduced
    /// dependency → its [`canon_key`]. Two *identical* TDs are trivially
    /// isomorphic, so serving a repeat from here is sound and skips the
    /// individualization–refinement search entirely. Duplicate-heavy
    /// request streams (the steady state `tdq serve` exists for) reduce to
    /// structurally identical dependency systems over and over; with the
    /// memo a warm request pays hashing instead of re-canonicalizing
    /// every premise. Bounded by [`CANON_MEMO_CAP`] (cleared, not evicted,
    /// when full — entries are cheap to recompute).
    canon_memo: RwLock<HashMap<Vec<u64>, CanonKey>>,
}

/// Entry bound for the [`Engine`] canonicalization memo: comfortably above
/// any realistic distinct-dependency working set while capping memory at a
/// few megabytes. On overflow the memo is cleared wholesale — a rare, cheap
/// reset beats per-entry eviction bookkeeping on this hot path.
const CANON_MEMO_CAP: usize = 8192;

/// Exact structural fingerprint of a TD: arity, antecedent count, then the
/// raw variable indices of every row (antecedents in order, conclusion
/// last), column by column. Equal fingerprints ⇔ identical inputs to the
/// canonical search ([`canon_key`] ignores names), so memoizing keys by
/// fingerprint can never conflate non-isomorphic TDs.
fn td_fingerprint(td: &Td) -> Vec<u64> {
    let mut out = Vec::with_capacity(2 + (td.antecedent_count() + 1) * td.arity());
    out.push(td.arity() as u64);
    out.push(td.antecedent_count() as u64);
    for row in td
        .antecedents()
        .iter()
        .chain(std::iter::once(td.conclusion()))
    {
        out.extend(row.components().map(|(_, v)| v.index() as u64));
    }
    out
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with the default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Self {
            cache: DecisionCache::with_capacity(config.cache_shards, config.cache_cap),
            policy: BudgetPolicy::new(config.budgets),
            opts: config.opts,
            jobs: config.jobs.max(1),
            counters: Counters::default(),
            root: Cancellation::new(),
            inflight: Mutex::new(Vec::new()),
            pending: Mutex::new(HashSet::new()),
            settled: Condvar::new(),
            sessions: Mutex::new(SessionRegistry {
                map: HashMap::new(),
                order: VecDeque::new(),
                max: config.max_sessions.max(1),
                opened: 0,
                evictions: 0,
            }),
            canon_memo: RwLock::new(HashMap::new()),
        }
    }

    /// The engine's budget policy.
    pub fn policy(&self) -> &BudgetPolicy {
        &self.policy
    }

    /// The solve options every request runs under.
    pub fn opts(&self) -> SolveOptions {
        self.opts
    }

    /// The effective worker-pool width batch and serve fan-out runs at
    /// (clamped to at least 1 at construction).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared decision cache (read access for diagnostics; writes go
    /// through the solving paths).
    pub fn cache(&self) -> &DecisionCache {
        &self.cache
    }

    /// The isomorphism-invariant canonical key of a word-problem instance:
    /// reduce to the dependency system `(D, D₀)` and key it with
    /// [`td_core::canon::system_key`]. Two presentations share the key iff
    /// their reduced systems are isomorphic — exactly when their verdicts
    /// provably agree.
    ///
    /// # Errors
    ///
    /// Fails when normalization or reduction rejects `p` (e.g. a
    /// presentation that is not reduction-ready after zero-saturation).
    pub fn canonical_key(p: &Presentation) -> Result<CanonKey> {
        let normalized = normalize(&p.zero_saturated())?;
        let system = crate::deps::build_system(&normalized.presentation)?;
        Ok(system_key(&system.deps, &system.d0))
    }

    /// [`Engine::canonical_key`] through this engine's canonicalization
    /// memo, keeping the intermediate products: the normalization and the
    /// reduction system built for keying are returned (with their phase
    /// timings) so a subsequent solve reuses them instead of rebuilding —
    /// the decide path normalizes and reduces exactly once per request.
    ///
    /// Per-dependency keys of structurally identical TDs are reused across
    /// requests (see the `canon_memo` field docs), so the warm path of a
    /// duplicate-heavy stream pays fingerprint hashing instead of the full
    /// canonical search. Always returns the same key as the static path.
    fn canonical_parts(
        &self,
        p: &Presentation,
    ) -> Result<(CanonKey, Normalized, ReductionSystem, PhaseTimings)> {
        let mut timings = PhaseTimings::default();
        let t = Instant::now();
        let normalized = normalize(&p.zero_saturated())?;
        timings.normalize = t.elapsed();
        let t = Instant::now();
        let system = crate::deps::build_system(&normalized.presentation)?;
        timings.reduce = t.elapsed();
        let key = system_key_with(&system.deps, &system.d0, |td| self.memoized_canon_key(td));
        Ok((key, normalized, system, timings))
    }

    /// The [`canon_key`] of one TD, served from the memo when an exact
    /// structural twin has been keyed before. Identical fingerprints mean
    /// identical encodings fed to the canonical search, hence identical
    /// keys — no isomorphism reasoning is delegated to the memo.
    fn memoized_canon_key(&self, td: &Td) -> CanonKey {
        let fp = td_fingerprint(td);
        // Poison recovery is sound here: the memo maps fingerprints to
        // deterministic pure values, and every critical section is a
        // single complete map operation, so a recovered map is always a
        // valid (possibly smaller-than-ideal) cache.
        if let Some(&k) = self
            .canon_memo
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&fp)
        {
            return k;
        }
        let key = canon_key(td);
        let mut memo = self
            .canon_memo
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if memo.len() >= CANON_MEMO_CAP {
            memo.clear();
        }
        memo.insert(fp, key);
        key
    }

    /// Mints a [`Ticket`] for one request: effective budgets from the
    /// policy plus a fresh cancellation token registered for shutdown.
    /// Fails with [`RedError::ShutDown`] once the engine is shut down.
    pub fn mint(&self, req: Option<RequestBudget>) -> Result<Ticket> {
        if self.root.is_cancelled() {
            return Err(RedError::ShutDown);
        }
        let cancel = Arc::new(Cancellation::new());
        {
            // Recover from poisoning rather than erroring: the registry is
            // a `Vec<Weak>` whose entries are pushed one at a time, so a
            // recovered vector is always structurally valid — and failing
            // to register here would leave the request invisible to
            // shutdown cancellation.
            let mut inflight = self
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Lazy pruning keeps the registry proportional to the number
            // of requests actually in flight, not ever made.
            if inflight.len() >= 64 {
                inflight.retain(|w| w.strong_count() > 0);
            }
            inflight.push(Arc::downgrade(&cancel));
        }
        // A shutdown that raced the registration above cancels the token
        // here, so no request slips through uncancellable.
        if self.root.is_cancelled() {
            cancel.cancel();
            return Err(RedError::ShutDown);
        }
        Ok(Ticket {
            budgets: self.policy.mint(req),
            cancel,
        })
    }

    /// Requests shutdown: no new tickets are minted, and every in-flight
    /// request's cancellation token is flipped so the searches back out at
    /// their next poll (their runs come back `Unknown`). Idempotent; never
    /// blocks on solving work.
    pub fn shutdown(&self) {
        self.root.cancel();
        // Shutdown must reach every in-flight token even after a panic
        // poisoned the registry — a skipped cancellation wedges a worker —
        // so recover rather than propagate.
        let inflight = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for weak in inflight.iter() {
            if let Some(token) = weak.upgrade() {
                token.cancel();
            }
        }
        // Wake decide() waiters so they observe the shutdown promptly.
        self.settled.notify_all();
    }

    /// `true` once [`Engine::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.root.is_cancelled()
    }

    /// A consistent snapshot of the cumulative accounting.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.counters.requests.total(),
            cache_hits: self.counters.cache_hits.total(),
            solved: self.counters.solved.total(),
            fastpath_hits: self.counters.fastpath_hits.total(),
            keys_cached: self.cache.len(),
            evictions: self.cache.evictions(),
            derivation_states: self.counters.derivation_states.total(),
            model_nodes: self.counters.model_nodes.total(),
        }
    }

    /// Serializes the resident decision cache to the versioned snapshot
    /// format ([`crate::snapshot`]): a lock-coherent per-shard export
    /// stamped with the current [`CANON_SCHEME_VERSION`]. Safe to call
    /// while requests are in flight — concurrently settling verdicts are
    /// either in the image or not, never torn.
    pub fn save_snapshot(&self) -> Vec<u8> {
        crate::snapshot::encode(&self.cache.export())
    }

    /// Merges a snapshot image into the decision cache, subject to the
    /// existing FIFO capacity bound (loading more keys than the cache can
    /// hold evicts normally).
    ///
    /// Structural defects — bad magic, unsupported format version,
    /// truncation, checksum mismatch — are a positioned
    /// [`RedError::Snapshot`] and load **nothing**. A snapshot whose
    /// canon-scheme version differs from this build's
    /// [`CANON_SCHEME_VERSION`] is structurally sound but its keys were
    /// minted under a different canonicalization: every entry is skipped
    /// (reported in [`LoadStats::keys_skipped_version`]) rather than
    /// reinterpreted — stale warmth degrades to a cold start, never to
    /// wrong verdicts.
    pub fn load_snapshot(&self, bytes: &[u8]) -> Result<LoadStats> {
        let snap = crate::snapshot::decode(bytes)?;
        if snap.canon_version != CANON_SCHEME_VERSION {
            return Ok(LoadStats {
                keys_loaded: 0,
                keys_skipped_version: snap.entries.len(),
            });
        }
        let keys_loaded = snap.entries.len();
        for (key, outcome) in snap.entries {
            self.cache.insert(key, outcome);
        }
        Ok(LoadStats {
            keys_loaded,
            keys_skipped_version: 0,
        })
    }

    fn record_spend(&self, spend: &SpendReport) {
        self.counters
            .derivation_states
            .add(spend.derivation_states as u64);
        self.counters.model_nodes.add(spend.model_nodes);
    }

    /// Runs the full pipeline for one request — certificates and all —
    /// under a minted ticket. This path does **not** consult the decision
    /// cache (a cached verdict cannot reproduce the certificates the
    /// caller is asking for) but still counts toward the request and spend
    /// accounting. `tdq wp`/`deps` and [`crate::pipeline::solve`] route
    /// through here.
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::ShutDown`] after [`Engine::shutdown`], and
    /// propagates pipeline errors (normalization, reduction, certificate
    /// verification).
    pub fn run_full(&self, p: &Presentation) -> Result<PipelineRun> {
        self.counters.requests.add(1);
        let ticket = self.mint(None)?;
        let run = solve_with_opts_on(p, &ticket.budgets, self.opts, ticket.cancellation())?;
        self.record_spend(&run.spend);
        self.counters.solved.add(1);
        if matches!(run.outcome, PipelineOutcome::FastSettled { .. }) {
            self.counters.fastpath_hits.add(1);
        }
        Ok(run)
    }

    /// Decides one implication question through the cache: canonicalize,
    /// answer from the cache when possible, otherwise run the racing
    /// solver once and record the settled verdict.
    ///
    /// Concurrent calls deciding the *same* canonical key are
    /// single-flighted: one caller solves, the rest block until the
    /// verdict lands in the cache and then read it as a hit. This keeps
    /// the hit/solve accounting deterministic — identical to a sequential
    /// replay of the same request multiset — and protects a busy server
    /// from thundering-herd duplicate solves. (`Unknown` verdicts are
    /// never cached, so every request for an undecided-within-budget class
    /// runs the solver, again matching the sequential replay.)
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::ShutDown`] after [`Engine::shutdown`], with
    /// [`RedError::Poisoned`] when the single-flight gate was poisoned by
    /// an earlier panic, and propagates pipeline errors.
    pub fn decide(&self, p: &Presentation) -> Result<Decision> {
        self.decide_with(p, None)
    }

    /// [`Engine::decide`] with per-request budget overrides (clamped by
    /// the [`BudgetPolicy`]).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::decide`].
    pub fn decide_with(&self, p: &Presentation, req: Option<RequestBudget>) -> Result<Decision> {
        let t_total = Instant::now();
        let (key, normalized, system, timings) = self.canonical_parts(p)?;
        self.counters.requests.add(1);
        match self.single_flight(key, move || {
            let ticket = self.mint(req)?;
            solve_prepared(
                normalized,
                system,
                &ticket.budgets,
                self.opts,
                ticket.cancellation(),
                timings,
                t_total,
            )
        })? {
            ItemOutcome::Settled(hit) => {
                self.counters.cache_hits.add(1);
                Ok(Decision {
                    key,
                    verdict: from_cached(&hit),
                    spend: hit.spend,
                    cached: true,
                    timings: PhaseTimings::default(),
                })
            }
            ItemOutcome::Ran(run) => {
                self.record_spend(&run.spend);
                self.counters.solved.add(1);
                if matches!(run.outcome, PipelineOutcome::FastSettled { .. }) {
                    self.counters.fastpath_hits.add(1);
                }
                Ok(Decision {
                    key,
                    verdict: compress(&run),
                    spend: run.spend,
                    cached: false,
                    timings: run.timings,
                })
            }
        }
    }

    /// The single-flight gate: answer `key` from the cache, or wait for
    /// an in-flight solve of the same key, or — as the one elected flight
    /// — run `solve` and publish its settled verdict. Exactly one caller
    /// runs the solver per key at any moment; the gate is lifted (and
    /// waiters woken) even when the solve errors, so waiters never
    /// deadlock.
    fn single_flight(
        &self,
        key: CanonKey,
        solve: impl FnOnce() -> Result<PipelineRun>,
    ) -> Result<ItemOutcome> {
        loop {
            if let Some(hit) = self.cache.get(key) {
                return Ok(ItemOutcome::Settled(hit));
            }
            let mut pending = self
                .pending
                .lock()
                .map_err(|_| RedError::Poisoned("single-flight gate"))?;
            if self.cache.get(key).is_some() {
                continue; // settled between the miss and the lock: re-read
            }
            if !pending.contains(&key) {
                pending.insert(key);
                break; // this caller is the solver
            }
            if self.is_shut_down() {
                return Err(RedError::ShutDown);
            }
            // Another caller is solving this key: wait for it to settle,
            // then re-check the cache.
            drop(
                self.settled
                    .wait(pending)
                    .map_err(|_| RedError::Poisoned("single-flight gate"))?,
            );
        }

        let outcome = solve();
        if let Ok(run) = &outcome {
            if let Some(cached) = settle(run) {
                self.cache.insert(key, cached);
            }
        }
        // Always lift the single-flight gate — even on error or after a
        // poisoning panic — before propagating, so waiters never deadlock.
        // Recovery is sound: the set's critical sections are single
        // complete operations.
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&key);
        self.settled.notify_all();
        outcome.map(ItemOutcome::Ran)
    }

    /// Decides a whole batch through the engine: within-batch dedup by
    /// canonical key, cross-request warmth via the shared cache, and the
    /// distinct remainder solved on the engine's worker pool. Semantics
    /// are identical to [`crate::batch::solve_batch`]; this method
    /// additionally charges the engine's cumulative stats, mints a ticket
    /// per solved item so shutdown reaches batch workers too, and routes
    /// each worker through the same single-flight gate as
    /// [`Engine::decide`] — a batch item and a concurrent `decide` for
    /// the same key share one solver run, keeping the accounting
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::decide`]; the first failing item aborts the
    /// batch.
    pub fn solve_batch(&self, items: &[Presentation]) -> Result<BatchRun> {
        let solve_item = |p: &Presentation, key: CanonKey| -> Result<ItemOutcome> {
            let outcome = self.single_flight(key, || {
                let ticket = self.mint(None)?;
                solve_with_opts_on(p, &ticket.budgets, self.opts, ticket.cancellation())
            })?;
            if let ItemOutcome::Ran(run) = &outcome {
                self.record_spend(&run.spend);
            }
            Ok(outcome)
        };
        let run = solve_batch_core(items, self.jobs, &self.cache, &solve_item)?;
        self.counters.requests.add(run.stats.total as u64);
        self.counters.cache_hits.add(run.stats.cache_hits as u64);
        self.counters.solved.add(run.stats.solved as u64);
        self.counters.fastpath_hits.add(run.stats.fastpath as u64);
        Ok(run)
    }

    /// Opens a named session. Fails if the id is already open; at the
    /// configured bound ([`EngineConfig::max_sessions`]) the
    /// least-recently-used session is evicted first. In-flight operations
    /// on an evicted session finish normally — they hold their own
    /// [`Arc<Session>`] — but the id stops resolving.
    pub fn session_open(&self, id: &str) -> Result<()> {
        if self.is_shut_down() {
            return Err(RedError::ShutDown);
        }
        let mut reg = self
            .sessions
            .lock()
            .map_err(|_| RedError::Poisoned("session registry"))?;
        if reg.map.contains_key(id) {
            return Err(RedError::Session(format!("session `{id}` is already open")));
        }
        while reg.map.len() >= reg.max {
            let Some(oldest) = reg.order.pop_front() else {
                break;
            };
            reg.map.remove(&oldest);
            reg.evictions += 1;
        }
        reg.map.insert(
            id.to_owned(),
            Arc::new(Session {
                id: id.to_owned(),
                inner: Mutex::new(SessionInner::default()),
            }),
        );
        reg.order.push_back(id.to_owned());
        reg.opened += 1;
        Ok(())
    }

    /// Closes a named session, dropping its Σ and every suspended chase.
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::Session`] for an unknown id and with
    /// [`RedError::Poisoned`] when the session registry lock was poisoned
    /// by an earlier panic.
    pub fn session_close(&self, id: &str) -> Result<()> {
        let mut reg = self
            .sessions
            .lock()
            .map_err(|_| RedError::Poisoned("session registry"))?;
        if reg.map.remove(id).is_none() {
            return Err(RedError::Session(format!("unknown session `{id}`")));
        }
        if let Some(pos) = reg.order.iter().position(|n| n == id) {
            reg.order.remove(pos);
        }
        Ok(())
    }

    /// Resolves a session id to its shared handle, touching its LRU slot.
    /// The registry lock is released before the caller takes the session's
    /// own lock, so registry operations never wait on a running ask.
    fn session(&self, id: &str) -> Result<Arc<Session>> {
        let mut reg = self
            .sessions
            .lock()
            .map_err(|_| RedError::Poisoned("session registry"))?;
        let Some(session) = reg.map.get(id).map(Arc::clone) else {
            return Err(RedError::Session(format!("unknown session `{id}`")));
        };
        if let Some(pos) = reg.order.iter().position(|n| n == id) {
            reg.order.remove(pos);
            reg.order.push_back(id.to_owned());
        }
        Ok(session)
    }

    /// Fixes or checks the session's schema against `schema`.
    fn session_schema(inner: &mut SessionInner, id: &str, schema: &Schema) -> Result<()> {
        match &inner.schema {
            Some(s) => s
                .expect_same(schema)
                .map_err(|e| RedError::Session(format!("session `{id}` schema mismatch: {e}")))?,
            None => inner.schema = Some(schema.clone()),
        }
        Ok(())
    }

    /// Adds dependencies to a session's Σ, returning the new Σ size.
    /// Names must be unique within the session (they are the removal
    /// handle); the whole call is rejected before any mutation if one
    /// clashes. Cached `NotImplied` verdicts are dropped (their
    /// countermodels may violate the new premises); `Implied` verdicts and
    /// every suspended chase survive — the appended TDs are integrated by
    /// the next ask's resumed chase, which is the whole point.
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::Session`] for an unknown session, a
    /// duplicate dependency name, or a Σ-size overflow, and with
    /// [`RedError::Poisoned`] on a poisoned registry/session lock.
    pub fn session_add_deps(&self, id: &str, tds: &[Td]) -> Result<usize> {
        let session = self.session(id)?;
        let mut inner = session
            .inner
            .lock()
            .map_err(|_| RedError::Poisoned("session state"))?;
        for td in tds {
            Self::session_schema(&mut inner, id, td.schema())?;
            let clash = inner.deps.iter().any(|(n, _)| n == td.name())
                || tds.iter().filter(|t| t.name() == td.name()).count() > 1;
            if clash {
                return Err(RedError::Session(format!(
                    "session `{id}` already has a dependency named `{}`",
                    td.name()
                )));
            }
        }
        for td in tds {
            inner.deps.push((td.name().to_owned(), td.clone()));
        }
        inner
            .verdicts
            .retain(|_, v| matches!(v, SessionVerdict::Implied { .. }));
        Ok(inner.deps.len())
    }

    /// Removes a dependency by name, returning the new Σ size. Cached
    /// `Implied` verdicts are dropped (their proofs may lean on the
    /// removed premise) and every suspended chase is discarded — derived
    /// rows cannot be retracted, so the next ask re-chases from scratch.
    /// `NotImplied` verdicts survive: a countermodel of a set still
    /// satisfies every subset.
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::Session`] for an unknown session or
    /// dependency name, and with [`RedError::Poisoned`] on a poisoned
    /// registry/session lock.
    pub fn session_remove_dep(&self, id: &str, name: &str) -> Result<usize> {
        let session = self.session(id)?;
        let mut inner = session
            .inner
            .lock()
            .map_err(|_| RedError::Poisoned("session state"))?;
        let Some(pos) = inner.deps.iter().position(|(n, _)| n == name) else {
            return Err(RedError::Session(format!(
                "session `{id}` has no dependency named `{name}`"
            )));
        };
        inner.deps.remove(pos);
        inner.chases.clear();
        inner
            .verdicts
            .retain(|_, v| matches!(v, SessionVerdict::NotImplied { .. }));
        Ok(inner.deps.len())
    }

    /// Asks `Σ ⊨ goal?` on a session's current Σ. Returns the verdict and
    /// whether it came from the session's verdict cache.
    ///
    /// A cold goal freezes its tableau and chases from scratch; a goal
    /// whose chase was suspended (by an earlier budget-bounded `Unknown`,
    /// or by Σ growing since) *resumes* it, redoing only the delta. The
    /// per-ask chase budget is an **increment** over the suspended state's
    /// spent counters, so every retry makes progress instead of re-hitting
    /// the same wall. Runs under a minted [`Ticket`]: shutdown cancels
    /// in-flight asks, which then report `Unknown` (never cached, and the
    /// partial state is kept for a later resume).
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::Session`] for an unknown session, with
    /// [`RedError::ShutDown`] after [`Engine::shutdown`], with
    /// [`RedError::Poisoned`] on a poisoned registry/session lock, and
    /// propagates freeze/chase errors.
    pub fn session_ask(&self, id: &str, goal: &Td) -> Result<(SessionVerdict, bool)> {
        let session = self.session(id)?;
        let ticket = self.mint(None)?;
        let mut inner = session
            .inner
            .lock()
            .map_err(|_| RedError::Poisoned("session state"))?;
        Self::session_schema(&mut inner, id, goal.schema())?;

        let key = canon_key(goal);
        if let Some(v) = inner.verdicts.get(&key) {
            return Ok((*v, true));
        }

        let mut chase = match inner.chases.remove(&key) {
            Some(chase) => chase,
            None => {
                let (frozen, _, goal_pattern) = freeze(goal)?;
                GoalChase {
                    state: ChaseState::new(frozen),
                    goal: goal_pattern,
                }
            }
        };
        let tds: Vec<Td> = inner.deps.iter().map(|(_, td)| td.clone()).collect();
        let base = self.policy.base().chase;
        let budget = ChaseBudget {
            max_steps: chase.state.steps_fired().saturating_add(base.max_steps),
            max_rows: chase.state.rows().saturating_add(base.max_rows),
            max_rounds: chase.state.rounds_run().saturating_add(base.max_rounds),
        };
        // td-lint: allow(lock-discipline) asks within one session are serialized by design: the
        // per-session lock (not the registry lock) is held across the chase so Σ cannot change
        // under a running ask, and shutdown still unblocks it via ticket cancellation polled
        // inside the chase loop.
        let mut engine = ChaseEngine::resume(&tds, chase.state, ChasePolicy::Restricted, budget)?
            .with_strategy(self.opts.strategy)
            .with_parallelism(self.opts.parallelism)
            .with_cancellation(ticket.cancellation());
        let outcome = engine.run(Some(&chase.goal));
        let verdict = match outcome {
            ChaseOutcome::GoalReached => SessionVerdict::Implied {
                chase_steps: engine.steps_fired(),
            },
            ChaseOutcome::Terminated => SessionVerdict::NotImplied {
                model_rows: engine.state().len(),
            },
            ChaseOutcome::BudgetExhausted => SessionVerdict::Unknown {
                chase_steps: engine.steps_fired(),
                state_rows: engine.state().len(),
            },
        };
        chase.state = engine.suspend();
        chase.state.shrink_to_fit();
        inner.chases.insert(key, chase);
        if !matches!(verdict, SessionVerdict::Unknown { .. }) {
            inner.verdicts.insert(key, verdict);
        }
        Ok((verdict, false))
    }

    /// A snapshot of the session registry's accounting.
    pub fn session_stats(&self) -> SessionStats {
        // Stats must stay available for observability even after a panic
        // poisoned the registry; the counters are plain integers, so a
        // recovered read is always coherent.
        let reg = self
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SessionStats {
            open: reg.map.len(),
            opened: reg.opened,
            evictions: reg.evictions,
        }
    }

    /// Redundancy analysis for a dependency set (the `tdq deps` question):
    /// for each `dᵢ ∈ tds`, does the rest of the set already imply it?
    /// Runs under the engine's chase budget and match strategy; counts as
    /// one request. TD-set analyses are not keyed into the decision cache
    /// (different object space from word-problem instances).
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::ShutDown`] after [`Engine::shutdown`], and
    /// propagates inference-engine errors from the per-TD implication
    /// checks.
    pub fn redundancy(&self, tds: &[Td]) -> Result<Vec<InferenceVerdict>> {
        self.counters.requests.add(1);
        let mut verdicts = Vec::with_capacity(tds.len());
        for i in 0..tds.len() {
            verdicts.push(inference::redundant_with_opts(
                tds,
                i,
                self.policy.base().chase,
                self.opts.strategy,
                self.opts.parallelism,
            )?);
        }
        Ok(verdicts)
    }
}

/// The cacheable form of a settled run, or `None` for `Unknown` (which is
/// a statement about this call's budgets, never cached).
fn settle(run: &PipelineRun) -> Option<CachedOutcome> {
    let verdict = match compress(run) {
        BatchVerdict::Implied {
            derivation_steps,
            proof_firings,
        } => CachedVerdict::Implied {
            derivation_steps,
            proof_firings,
        },
        BatchVerdict::Refuted { model_rows } => CachedVerdict::Refuted { model_rows },
        BatchVerdict::Unknown { .. } => return None,
    };
    Some(CachedOutcome {
        verdict,
        spend: run.spend,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A1 A1 = 0", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn derivable_renamed() -> Presentation {
        let alphabet = Alphabet::new(["start", "gen", "zip"], "start", "zip").unwrap();
        let eqs = vec![
            Equation::parse("gen gen = zip", &alphabet).unwrap(),
            Equation::parse("gen gen = start", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn refutable() -> Presentation {
        Presentation::new(Alphabet::standard(1), vec![]).unwrap()
    }

    #[test]
    fn decide_solves_then_hits() {
        let engine = Engine::new();
        let first = engine.decide(&derivable()).unwrap();
        assert!(!first.cached);
        assert!(matches!(first.verdict, BatchVerdict::Implied { .. }));

        // The isomorphic copy is answered from the cache, same verdict and
        // spend provenance, zero timings.
        let second = engine.decide(&derivable_renamed()).unwrap();
        assert!(second.cached);
        assert_eq!(second.key, first.key);
        assert_eq!(second.verdict, first.verdict);
        assert_eq!(second.spend, first.spend);
        assert_eq!(second.timings, PhaseTimings::default());

        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.keys_cached, 1);
        assert_eq!(stats.evictions, 0);
        assert!(stats.derivation_states > 0, "winner spend is charged");
    }

    #[test]
    fn memoized_canonical_keys_match_the_static_path() {
        // The canon memo must be invisible in the keys it produces: the
        // memoized instance path and the memo-free static path agree on
        // every presentation, before and after the memo is warm.
        let engine = Engine::new();
        for p in [derivable(), derivable_renamed(), refutable()] {
            let static_key = Engine::canonical_key(&p).unwrap();
            assert_eq!(engine.canonical_parts(&p).unwrap().0, static_key);
            // Second pass is served from a warm memo — same key.
            assert_eq!(engine.canonical_parts(&p).unwrap().0, static_key);
        }
        assert!(
            !engine.canon_memo.read().unwrap().is_empty(),
            "the memo actually populated"
        );
    }

    #[test]
    fn run_full_counts_but_does_not_cache() {
        let engine = Engine::new();
        let run = engine.run_full(&derivable()).unwrap();
        assert!(run.outcome.is_implied());
        let stats = engine.stats();
        assert_eq!((stats.requests, stats.solved), (1, 1));
        assert_eq!(stats.keys_cached, 0, "full runs bypass the cache");
    }

    #[test]
    fn batch_routes_through_engine_stats() {
        let engine = Engine::new();
        let items = vec![derivable(), refutable(), derivable_renamed()];
        let run = engine.solve_batch(&items).unwrap();
        assert_eq!(run.stats.total, 3);
        assert_eq!(run.stats.solved, 2);
        let stats = engine.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.solved, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.keys_cached, 2);

        // A decide after the batch is warm.
        let d = engine.decide(&refutable()).unwrap();
        assert!(d.cached, "cache is shared across entry points");
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn snapshot_warm_start_answers_without_solving() {
        // Warm one engine the expensive way, snapshot it, and start a
        // fresh engine from the image: the replay is all cache hits.
        let cold = Engine::new();
        cold.decide(&derivable()).unwrap();
        cold.decide(&refutable()).unwrap();
        let image = cold.save_snapshot();

        let warm = Engine::new();
        let stats = warm.load_snapshot(&image).unwrap();
        assert_eq!(
            stats,
            LoadStats {
                keys_loaded: 2,
                keys_skipped_version: 0
            }
        );
        assert_eq!(warm.stats().keys_cached, 2);

        for p in [derivable(), derivable_renamed(), refutable()] {
            let d = warm.decide(&p).unwrap();
            assert!(d.cached, "warm-started engine answers from the cache");
        }
        assert_eq!(warm.stats().solved, 0, "no solver run after warm start");
        assert_eq!(warm.stats().cache_hits, 3);

        // Same-verdict provenance survives the round trip.
        assert_eq!(
            warm.decide(&derivable()).unwrap().spend,
            cold.decide(&derivable()).unwrap().spend
        );
    }

    #[test]
    fn snapshot_from_a_bumped_canon_scheme_is_rejected_on_load() {
        // Pin the compatibility gate: a snapshot stamped with a different
        // canon-scheme version loads zero keys — its CanonKeys were minted
        // under a different canonicalization and must not be trusted.
        let cold = Engine::new();
        cold.decide(&derivable()).unwrap();
        let foreign = crate::snapshot::encode_with_canon_version(
            &cold.cache().export(),
            CANON_SCHEME_VERSION + 1,
        );

        let warm = Engine::new();
        let stats = warm.load_snapshot(&foreign).unwrap();
        assert_eq!(
            stats,
            LoadStats {
                keys_loaded: 0,
                keys_skipped_version: 1
            }
        );
        assert!(warm.cache().is_empty(), "nothing from the foreign scheme");
        assert!(!warm.decide(&derivable()).unwrap().cached, "still cold");
    }

    #[test]
    fn corrupt_snapshot_is_a_positioned_error_and_loads_nothing() {
        let cold = Engine::new();
        cold.decide(&derivable()).unwrap();
        let mut image = cold.save_snapshot();
        let n = image.len();
        image[n / 2] ^= 0x10;

        let warm = Engine::new();
        let err = warm.load_snapshot(&image).unwrap_err();
        match err {
            RedError::Snapshot(ref s) => assert!(s.offset <= n, "positioned"),
            ref other => panic!("expected Snapshot error, got {other:?}"),
        }
        assert!(err.to_string().contains("snapshot byte"));
        assert!(warm.cache().is_empty(), "never partially loaded");
    }

    #[test]
    fn snapshot_load_respects_the_capacity_bound() {
        let big = Engine::new();
        big.decide(&derivable()).unwrap();
        big.decide(&refutable()).unwrap();
        let image = big.save_snapshot();

        let tiny = Engine::with_config(EngineConfig {
            cache_shards: 1,
            cache_cap: 1,
            ..EngineConfig::default()
        });
        let stats = tiny.load_snapshot(&image).unwrap();
        assert_eq!(stats.keys_loaded, 2, "both entries pass through insert");
        assert_eq!(tiny.cache().len(), 1, "FIFO bound holds during load");
        assert_eq!(tiny.cache().evictions(), 1);
    }

    /// Regression: a pre-warmed cache entry evicted *during* a batch (by
    /// the batch's own inserts on a tiny cache, or by any concurrent
    /// writer on a shared engine) must not break the fan-out — the hit is
    /// pinned at lookup time, not re-read from the cache at the end.
    #[test]
    fn prewarmed_entry_evicted_mid_batch_still_answers() {
        let engine = Engine::with_config(EngineConfig {
            cache_shards: 1,
            cache_cap: 1,
            ..EngineConfig::default()
        });
        let warm = engine.decide(&derivable()).unwrap();
        assert_eq!(engine.cache().len(), 1);

        // The batch pins `derivable` from the cache in its dedup phase,
        // then solving `refutable` evicts it before fan-out.
        let run = engine.solve_batch(&[derivable(), refutable()]).unwrap();
        assert_eq!(
            run.verdicts[0], warm.verdict,
            "pinned hit survives eviction"
        );
        assert!(matches!(run.verdicts[1], BatchVerdict::Refuted { .. }));
        assert_eq!(run.stats.solved, 1, "only the cold class ran the solver");
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.evictions, 1, "the warm entry was evicted");
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(engine.cache().len(), 1, "capacity is still enforced");
    }

    #[test]
    fn budget_overrides_clamp_to_policy() {
        let policy = BudgetPolicy::new(Budgets::default());
        let base = *policy.base();
        let minted = policy.mint(Some(RequestBudget {
            derivation_states: Some(7),
            model_nodes: Some(u64::MAX),
        }));
        assert_eq!(minted.derivation.max_states, 7, "shrinking is honored");
        assert_eq!(
            minted.model.max_nodes, base.model.max_nodes,
            "growing clamps to the policy cap"
        );
        assert_eq!(policy.mint(None), base);
    }

    #[test]
    fn shutdown_refuses_new_work_and_cancels_inflight_tokens() {
        let engine = Engine::new();
        engine.decide(&derivable()).unwrap();
        let ticket = engine.mint(None).unwrap();
        assert!(!ticket.cancellation().is_cancelled());
        engine.shutdown();
        assert!(engine.is_shut_down());
        assert!(
            ticket.cancellation().is_cancelled(),
            "shutdown reaches live tickets"
        );
        assert!(matches!(engine.mint(None), Err(RedError::ShutDown)));
        assert!(matches!(
            engine.decide(&refutable()),
            Err(RedError::ShutDown)
        ));
        // But the cache still answers reads (diagnostics after drain).
        assert_eq!(engine.cache().len(), 1);
        engine.shutdown(); // idempotent
    }

    #[test]
    fn decide_after_shutdown_still_serves_cached_verdicts() {
        // Shutdown stops *solving*, and decide() for an uncached key fails
        // with ShutDown; an already-settled key, however, errors too only
        // at mint time — the cache read happens first, so warm keys still
        // answer. This is deliberate: drain logic can keep replying to
        // known answers while refusing new work.
        let engine = Engine::new();
        engine.decide(&derivable()).unwrap();
        engine.shutdown();
        let d = engine.decide(&derivable_renamed()).unwrap();
        assert!(d.cached);
    }

    // ---- session tests -------------------------------------------------

    fn rel_schema() -> Schema {
        Schema::new("R", ["A", "B"]).unwrap()
    }

    fn build_td(name: &str, antecedents: &[[&str; 2]], conclusion: [&str; 2]) -> Td {
        let mut b = td_core::td::TdBuilder::new(rel_schema());
        for row in antecedents {
            b = b.antecedent(*row).unwrap();
        }
        b.conclusion(conclusion).unwrap().build(name).unwrap()
    }

    /// The full product TD `R(a,b) & R(a',b') -> R(a,b')` — strong: its
    /// closure is the active-domain product, so it implies every full TD
    /// over this schema.
    fn prod() -> Td {
        build_td("prod", &[["a", "b"], ["a'", "b'"]], ["a", "b'"])
    }

    /// Pseudo-transitivity `R(a,b) & R(a',b) & R(a',b') -> R(a,b')` —
    /// weak: only closes connected components, does *not* imply `prod`.
    fn pt() -> Td {
        build_td("pt", &[["a", "b"], ["a'", "b"], ["a'", "b'"]], ["a", "b'"])
    }

    /// A goal isomorphic to `prod` (different name; the session keys goals
    /// by canonical form, so the name must not matter).
    fn prod_goal() -> Td {
        build_td("goal", &[["x", "y"], ["x'", "y'"]], ["x", "y'"])
    }

    #[test]
    fn session_lifecycle_monotone_invalidation() {
        let engine = Engine::new();
        engine.session_open("s").unwrap();
        let goal = prod_goal();

        // Empty Σ: the frozen two-row tableau is already a fixpoint.
        let (v, cached) = engine.session_ask("s", &goal).unwrap();
        assert_eq!(v, SessionVerdict::NotImplied { model_rows: 2 });
        assert!(!cached);
        let (v2, cached) = engine.session_ask("s", &goal).unwrap();
        assert_eq!(v2, v);
        assert!(cached, "settled verdicts are cached per session");

        // Adding the weak TD invalidates NotImplied, and the re-ask (a
        // resumed chase) still refutes: pt cannot bridge the components.
        assert_eq!(engine.session_add_deps("s", &[pt()]).unwrap(), 1);
        let (v, cached) = engine.session_ask("s", &goal).unwrap();
        assert_eq!(v, SessionVerdict::NotImplied { model_rows: 2 });
        assert!(!cached, "add_dep drops NotImplied verdicts");

        // Adding prod flips the verdict; the suspended chase is resumed,
        // not restarted, and the goal is found.
        assert_eq!(engine.session_add_deps("s", &[prod()]).unwrap(), 2);
        let (v, cached) = engine.session_ask("s", &goal).unwrap();
        assert!(matches!(v, SessionVerdict::Implied { .. }), "{v:?}");
        assert!(!cached);
        let (_, cached) = engine.session_ask("s", &goal).unwrap();
        assert!(cached, "Implied verdicts cache until Σ shrinks");

        // Removal drops Implied and re-chases from scratch.
        assert_eq!(engine.session_remove_dep("s", "prod").unwrap(), 1);
        let (v, cached) = engine.session_ask("s", &goal).unwrap();
        assert_eq!(v, SessionVerdict::NotImplied { model_rows: 2 });
        assert!(!cached, "remove_dep drops Implied verdicts");

        // Every verdict above agrees with the from-scratch oracle.
        let oracle =
            inference::implies(&[pt()], &goal, td_core::chase::ChaseBudget::default()).unwrap();
        assert!(matches!(oracle, InferenceVerdict::NotImplied(_)));

        engine.session_close("s").unwrap();
        assert!(matches!(
            engine.session_ask("s", &goal),
            Err(RedError::Session(_))
        ));
    }

    #[test]
    fn session_errors_are_structured() {
        let engine = Engine::new();
        engine.session_open("s").unwrap();
        assert!(matches!(
            engine.session_open("s"),
            Err(RedError::Session(_))
        ));
        assert!(matches!(
            engine.session_close("nope"),
            Err(RedError::Session(_))
        ));
        assert!(matches!(
            engine.session_add_deps("nope", &[prod()]),
            Err(RedError::Session(_))
        ));
        assert!(matches!(
            engine.session_remove_dep("s", "prod"),
            Err(RedError::Session(_))
        ));
        // Duplicate names: within one call, and against resident deps.
        assert!(matches!(
            engine.session_add_deps("s", &[prod(), prod()]),
            Err(RedError::Session(_))
        ));
        engine.session_add_deps("s", &[prod()]).unwrap();
        assert!(matches!(
            engine.session_add_deps("s", &[prod()]),
            Err(RedError::Session(_))
        ));
        // The rejected double-add must not have mutated Σ.
        assert_eq!(engine.session_remove_dep("s", "prod").unwrap(), 0);

        // Schema is fixed by the first dependency.
        engine.session_add_deps("s", &[prod()]).unwrap();
        let other = td_core::td::TdBuilder::new(Schema::new("S", ["X"]).unwrap())
            .antecedent(["x"])
            .unwrap()
            .conclusion(["x"])
            .unwrap()
            .build("other")
            .unwrap();
        assert!(matches!(
            engine.session_add_deps("s", std::slice::from_ref(&other)),
            Err(RedError::Session(_))
        ));
        assert!(matches!(
            engine.session_ask("s", &other),
            Err(RedError::Session(_))
        ));

        // Shutdown refuses session work too.
        engine.shutdown();
        assert!(matches!(engine.session_open("t"), Err(RedError::ShutDown)));
        assert!(matches!(
            engine.session_ask("s", &prod_goal()),
            Err(RedError::ShutDown)
        ));
    }

    #[test]
    fn session_registry_is_bounded_with_lru_eviction() {
        let engine = Engine::with_config(EngineConfig {
            max_sessions: 2,
            ..EngineConfig::default()
        });
        engine.session_open("a").unwrap();
        engine.session_open("b").unwrap();
        // Touch `a` so `b` becomes the least recently used…
        engine.session_add_deps("a", &[prod()]).unwrap();
        // …and the third open evicts `b`, not `a`.
        engine.session_open("c").unwrap();
        assert!(matches!(
            engine.session_add_deps("b", &[prod()]),
            Err(RedError::Session(_))
        ));
        assert_eq!(engine.session_remove_dep("a", "prod").unwrap(), 0);

        let stats = engine.session_stats();
        assert_eq!(stats.open, 2);
        assert_eq!(stats.opened, 3);
        assert_eq!(stats.evictions, 1);

        // A close is not an eviction.
        engine.session_close("c").unwrap();
        assert_eq!(engine.session_stats().open, 1);
        assert_eq!(engine.session_stats().evictions, 1);
    }

    #[test]
    fn session_ask_budget_is_an_increment_so_retries_progress() {
        // One fired step per ask: the goal needs several, so the session
        // answers Unknown a few times — each ask resuming exactly where
        // the last stopped — before settling, instead of re-hitting the
        // same wall forever (what an absolute budget would do).
        let budgets = Budgets {
            chase: td_core::chase::ChaseBudget {
                max_steps: 1,
                max_rows: 10_000,
                max_rounds: 10_000,
            },
            ..Budgets::default()
        };
        let engine = Engine::with_config(EngineConfig {
            budgets,
            ..EngineConfig::default()
        });
        engine.session_open("s").unwrap();
        engine.session_add_deps("s", &[prod()]).unwrap();
        // Three disconnected rows; reaching goal pattern (x, y'') takes
        // more than one product firing.
        let goal = build_td(
            "wide",
            &[["x", "y"], ["x'", "y'"], ["x''", "y''"]],
            ["x", "y''"],
        );

        let (first, _) = engine.session_ask("s", &goal).unwrap();
        assert!(
            matches!(first, SessionVerdict::Unknown { .. }),
            "one step cannot settle this goal: {first:?}"
        );
        let mut asks = 1;
        let verdict = loop {
            let (v, cached) = engine.session_ask("s", &goal).unwrap();
            asks += 1;
            assert!(asks < 20, "increments must make progress");
            if let SessionVerdict::Unknown { chase_steps, .. } = v {
                assert!(!cached, "Unknown is never cached");
                assert!(chase_steps >= asks - 1, "each ask fires its step");
                continue;
            }
            break (v, cached);
        };
        assert!(
            matches!(verdict.0, SessionVerdict::Implied { .. }),
            "{verdict:?}"
        );
        // The closure of prod over 3 rows needs at most 6 firings.
        if let SessionVerdict::Implied { chase_steps } = verdict.0 {
            assert!(chase_steps <= 6, "resume never redoes fired steps");
        }
    }

    #[test]
    fn tight_engine_budgets_give_unknown_and_do_not_cache() {
        let alphabet = Alphabet::standard(2);
        let grow = Equation::parse("A0 A1 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![grow]).unwrap();
        let tight = Budgets {
            derivation: td_semigroup::derivation::SearchBudget {
                max_word_len: 6,
                max_states: 50,
            },
            model: td_semigroup::model_search::ModelSearchOptions {
                min_size: 3,
                max_size: 3,
                max_nodes: 5,
            },
            chase: td_core::chase::ChaseBudget::default(),
        };
        let engine = Engine::with_config(EngineConfig {
            budgets: tight,
            ..EngineConfig::default()
        });
        let first = engine.decide(&p).unwrap();
        assert!(matches!(first.verdict, BatchVerdict::Unknown { .. }));
        let second = engine.decide(&p).unwrap();
        assert!(!second.cached, "Unknown is never cached");
        assert_eq!(engine.stats().solved, 2);
    }
}
