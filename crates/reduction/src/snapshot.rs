//! A versioned, compact, dependency-free binary snapshot format for the
//! decision cache — the persistence half of warm-start.
//!
//! The decision cache is the product's accumulated value: every entry is a
//! *theorem* about an isomorphism class ([`CanonKey`] → settled verdict)
//! and never goes stale. This module gives that value a life beyond the
//! process: [`encode`] serializes an exported entry list to a flat byte
//! image, [`decode`] reads one back, and [`write_atomic`] publishes it to
//! disk via the tmp-file + rename idiom so a concurrent reader never
//! observes a torn snapshot.
//!
//! # Format
//!
//! All integers little-endian, no padding, no external dependencies:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"TDQSNAP\0"
//!      8     4  snapshot format version   (SNAPSHOT_FORMAT_VERSION)
//!     12     4  canon-scheme version      (td_core::canon::CANON_SCHEME_VERSION
//!                                          of the writer)
//!     16     8  entry count N
//!     24  N*58  fixed-width records (see below)
//!   24+N*58  8  checksum: FNV-1a 64 over every preceding byte
//! ```
//!
//! Each 58-byte record (format version 2; version-1 records were 50 bytes
//! and lacked the fastpath fields — old snapshots are rejected by the
//! format-version gate, never reinterpreted):
//!
//! ```text
//! offset  size  field
//!      0    16  CanonKey::raw()
//!     16     1  verdict tag: 0 = Implied, 1 = Refuted
//!     17     8  derivation_steps (Implied) / model_rows (Refuted)
//!     25     8  proof_firings    (Implied) / 0          (Refuted)
//!     33     8  spend.derivation_states
//!     41     8  spend.model_nodes
//!     49     8  spend.fastpath_checks
//!     57     1  spend flags: bit 0 derivation_truncated,
//!               bit 1 model_truncated, bit 2 fastpath_truncated
//! ```
//!
//! `Unknown` verdicts are never cached, so they have no encoding.
//!
//! # Compatibility rules
//!
//! Two versions guard two different failure modes:
//!
//! * the **format version** says whether these bytes can be *parsed*. A
//!   mismatch (or a bad magic, length, or checksum) is a structural
//!   [`SnapshotError`] carrying the byte offset of the failure — the
//!   snapshot is rejected outright and nothing is partially loaded;
//! * the **canon-scheme version** says whether the parsed keys still
//!   *mean* what this build thinks they mean. [`decode`] surfaces the
//!   writer's version in [`Snapshot::canon_version`]; the engine's loader
//!   refuses to merge entries minted under a different scheme (they are
//!   counted as skipped, never reinterpreted — see
//!   [`crate::engine::Engine::load_snapshot`]).

use std::path::Path;

use td_core::canon::{CanonKey, CANON_SCHEME_VERSION};

use crate::cache::{CachedOutcome, CachedVerdict};
use crate::pipeline::SpendReport;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"TDQSNAP\0";

/// Version of the byte layout described in the module docs. Bump on any
/// change to the header or record encoding.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Bytes per entry record.
const RECORD_BYTES: usize = 58;
/// Bytes before the first record.
const HEADER_BYTES: usize = 24;
/// Bytes of the trailing checksum.
const CHECKSUM_BYTES: usize = 8;

/// A structural snapshot defect: what went wrong and at which byte
/// offset. Any such error rejects the whole snapshot — the decoder never
/// returns a partial entry list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// 0-based byte offset of the defect in the snapshot image.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl SnapshotError {
    fn new(offset: usize, msg: impl Into<String>) -> Self {
        Self {
            offset,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot: the writer's canon-scheme version and the entry
/// list, in the order the writer exported them (per-shard FIFO order, so
/// reloading preserves eviction seniority).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// [`CANON_SCHEME_VERSION`] of the build that wrote the snapshot.
    pub canon_version: u32,
    /// The cached verdicts, keyed by raw canonical key.
    pub entries: Vec<(CanonKey, CachedOutcome)>,
}

/// FNV-1a 64 over a byte slice — the trailing integrity checksum. Not
/// cryptographic (snapshots are operator-trusted files); it exists to turn
/// truncation and bit rot into a clean rejection instead of corrupt keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes an entry list under the current [`CANON_SCHEME_VERSION`].
pub fn encode(entries: &[(CanonKey, CachedOutcome)]) -> Vec<u8> {
    encode_with_canon_version(entries, CANON_SCHEME_VERSION)
}

/// [`encode`] with an explicit canon-scheme version stamp. Exists so
/// compatibility tests can fabricate snapshots "from the future" (or the
/// past); production writers always stamp the current version.
pub fn encode_with_canon_version(entries: &[(CanonKey, CachedOutcome)], canon: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + entries.len() * RECORD_BYTES + CHECKSUM_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&canon.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, outcome) in entries {
        out.extend_from_slice(&key.raw().to_le_bytes());
        let (tag, a, b) = match outcome.verdict {
            CachedVerdict::Implied {
                derivation_steps,
                proof_firings,
            } => (0u8, derivation_steps as u64, proof_firings as u64),
            CachedVerdict::Refuted { model_rows } => (1u8, model_rows as u64, 0u64),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(outcome.spend.derivation_states as u64).to_le_bytes());
        out.extend_from_slice(&outcome.spend.model_nodes.to_le_bytes());
        out.extend_from_slice(&outcome.spend.fastpath_checks.to_le_bytes());
        let flags = u8::from(outcome.spend.derivation_truncated)
            | (u8::from(outcome.spend.model_truncated) << 1)
            | (u8::from(outcome.spend.fastpath_truncated) << 2);
        out.push(flags);
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Reads little-endian integers out of a snapshot image.
fn u32_at(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

fn u128_at(bytes: &[u8], offset: usize) -> u128 {
    u128::from_le_bytes(bytes[offset..offset + 16].try_into().expect("16 bytes"))
}

/// Decodes a snapshot image, validating magic, format version, length and
/// checksum before touching a single record. Every structural defect is a
/// positioned [`SnapshotError`]; on success the returned entries are
/// complete. The caller still owes the canon-scheme compatibility check
/// (see [`Snapshot::canon_version`] and the module docs).
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(SnapshotError::new(
            bytes.len(),
            format!(
                "truncated snapshot: {} bytes, need at least {} for an empty one",
                bytes.len(),
                HEADER_BYTES + CHECKSUM_BYTES
            ),
        ));
    }
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::new(0, "bad magic: not a tdq cache snapshot"));
    }
    let format = u32_at(bytes, 8);
    if format != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::new(
            8,
            format!(
                "unsupported snapshot format version {format} (this build reads \
                 {SNAPSHOT_FORMAT_VERSION})"
            ),
        ));
    }
    let canon_version = u32_at(bytes, 12);
    let count = u64_at(bytes, 16);
    let records = (count as usize)
        .checked_mul(RECORD_BYTES)
        .and_then(|r| r.checked_add(HEADER_BYTES + CHECKSUM_BYTES))
        .ok_or_else(|| SnapshotError::new(16, format!("absurd entry count {count}")))?;
    if bytes.len() != records {
        return Err(SnapshotError::new(
            bytes.len().min(records),
            format!(
                "length mismatch: {} entries need {} bytes, got {}",
                count,
                records,
                bytes.len()
            ),
        ));
    }
    let body = bytes.len() - CHECKSUM_BYTES;
    let stored = u64_at(bytes, body);
    let computed = fnv1a64(&bytes[..body]);
    if stored != computed {
        return Err(SnapshotError::new(
            body,
            format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        ));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let at = HEADER_BYTES + i * RECORD_BYTES;
        let key = CanonKey::from_raw(u128_at(bytes, at));
        let tag = bytes[at + 16];
        let a = u64_at(bytes, at + 17);
        let b = u64_at(bytes, at + 25);
        let verdict = match tag {
            0 => CachedVerdict::Implied {
                derivation_steps: a as usize,
                proof_firings: b as usize,
            },
            1 => CachedVerdict::Refuted {
                model_rows: a as usize,
            },
            other => {
                return Err(SnapshotError::new(
                    at + 16,
                    format!("record {i}: unknown verdict tag {other}"),
                ));
            }
        };
        let flags = bytes[at + 57];
        if flags & !0b111 != 0 {
            return Err(SnapshotError::new(
                at + 57,
                format!("record {i}: unknown spend flags {flags:#04x}"),
            ));
        }
        let spend = SpendReport {
            fastpath_checks: u64_at(bytes, at + 49),
            fastpath_truncated: flags & 0b100 != 0,
            derivation_states: u64_at(bytes, at + 33) as usize,
            derivation_truncated: flags & 0b01 != 0,
            model_nodes: u64_at(bytes, at + 41),
            model_truncated: flags & 0b10 != 0,
        };
        entries.push((key, CachedOutcome { verdict, spend }));
    }
    Ok(Snapshot {
        canon_version,
        entries,
    })
}

/// Publishes a snapshot image at `path` atomically: the bytes are written
/// to a sibling tmp file and `rename`d into place, so a reader (another
/// replica warming up, a concurrent `--cache-load`) observes either the
/// old complete snapshot or the new complete snapshot, never a torn
/// prefix. The tmp name embeds the process id, so concurrent writers on
/// one host cannot trample each other's staging file.
///
/// # Errors
///
/// Fails with the underlying I/O error when the tmp file cannot be
/// created, written, or renamed into place.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    };
    let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp); // best-effort cleanup
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> (CanonKey, CachedOutcome) {
        let verdict = if n % 2 == 0 {
            CachedVerdict::Implied {
                derivation_steps: n as usize,
                proof_firings: (n * 3) as usize,
            }
        } else {
            CachedVerdict::Refuted {
                model_rows: n as usize + 2,
            }
        };
        (
            CanonKey::from_raw((n as u128) << 64 | 0xdead_beef),
            CachedOutcome {
                verdict,
                spend: SpendReport {
                    fastpath_checks: n * 13,
                    fastpath_truncated: n % 7 == 0,
                    derivation_states: n as usize * 7,
                    derivation_truncated: n % 3 == 0,
                    model_nodes: n * 11,
                    model_truncated: n % 5 == 0,
                },
            },
        )
    }

    #[test]
    fn roundtrip_preserves_entries_and_order() {
        let entries: Vec<_> = (0..17).map(entry).collect();
        let bytes = encode(&entries);
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + 17 * RECORD_BYTES + CHECKSUM_BYTES
        );
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.canon_version, CANON_SCHEME_VERSION);
        assert_eq!(snap.entries, entries);

        let empty = decode(&encode(&[])).unwrap();
        assert!(empty.entries.is_empty());
    }

    #[test]
    fn truncation_is_rejected_with_position() {
        let bytes = encode(&(0..4).map(entry).collect::<Vec<_>>());
        for cut in [0, 7, HEADER_BYTES, bytes.len() - 9, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).expect_err("truncated must fail");
            assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
        // Trailing garbage is equally structural.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode(&long).unwrap_err().msg.contains("length mismatch"));
    }

    #[test]
    fn corruption_is_rejected_by_the_checksum() {
        let clean = encode(&(0..4).map(entry).collect::<Vec<_>>());
        // Flip one bit anywhere in the record region: checksum catches it.
        for at in [HEADER_BYTES, HEADER_BYTES + 20, clean.len() - 10] {
            let mut bad = clean.clone();
            bad[at] ^= 0x40;
            let err = decode(&bad).expect_err("corrupt must fail");
            assert!(
                err.msg.contains("checksum mismatch"),
                "{at}: wrong error {err}"
            );
            assert_eq!(err.offset, clean.len() - CHECKSUM_BYTES);
        }
    }

    #[test]
    fn wrong_magic_and_format_version_are_rejected() {
        let mut bad = encode(&[entry(1)]);
        bad[0] = b'X';
        let err = decode(&bad).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.msg.contains("magic"));

        let mut entries = vec![entry(1)];
        let mut future = encode(&entries);
        future[8..12].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        // Re-stamp the checksum so the *version* check is what fires.
        let body = future.len() - CHECKSUM_BYTES;
        let sum = fnv1a64(&future[..body]);
        future[body..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&future).unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(err.msg.contains("unsupported snapshot format version"));

        // A foreign canon-scheme stamp decodes fine — meaning, not shape —
        // and is surfaced for the loader's compatibility gate.
        entries.push(entry(2));
        let foreign = encode_with_canon_version(&entries, CANON_SCHEME_VERSION + 9);
        let snap = decode(&foreign).unwrap();
        assert_eq!(snap.canon_version, CANON_SCHEME_VERSION + 9);
        assert_eq!(snap.entries.len(), 2);
    }

    #[test]
    fn unknown_tags_and_flags_are_rejected() {
        let clean = encode(&[entry(2)]);
        for (at, what) in [(HEADER_BYTES + 16, "verdict tag"), (HEADER_BYTES + 57, "")] {
            let mut bad = clean.clone();
            bad[at] = 0x9;
            let body = bad.len() - CHECKSUM_BYTES;
            let sum = fnv1a64(&bad[..body]);
            bad[body..].copy_from_slice(&sum.to_le_bytes());
            let err = decode(&bad).expect_err("bad record must fail");
            assert_eq!(err.offset, at);
            assert!(err.msg.contains("record 0"), "{err}");
            assert!(err.msg.contains(what), "{err}");
        }
    }

    #[test]
    fn write_atomic_replaces_without_tearing() {
        let dir = std::env::temp_dir().join(format!("td_snapshot_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tdsnap");
        let first = encode(&[entry(1)]);
        write_atomic(&path, &first).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        let second = encode(&(0..9).map(entry).collect::<Vec<_>>());
        write_atomic(&path, &second).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), second);
        // No staging litter left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
