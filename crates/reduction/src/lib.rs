//! # td-reduction — the Gurevich–Lewis reduction
//!
//! This crate turns the paper's Reduction Theorem into executable objects.
//! Given a word-problem instance φ (a zero-saturated presentation with
//! normalized `(2,1)` equations over an alphabet `S ∋ {A₀, 0}`), it builds:
//!
//! * a typed relational **schema with `2n+2` attributes** — for each symbol
//!   `A ∈ S` the equivalence relations `A′` and `A″`, plus `E` (base row)
//!   and `E′` (apex row) — see [`attrs`];
//! * the dependency set **D**: four template dependencies `D1(r)…D4(r)` per
//!   equation `r: AB = C` (Fig. 3), each with at most **five antecedents**,
//!   plus the goal dependency **D₀** ("an A₀-triangle implies a 0-triangle
//!   over the same base") — see [`deps`];
//! * **bridges** (Fig. 2): the row structures representing words, with
//!   invariant checking — see [`bridge`];
//! * **part (A)**: a replacement derivation `A₀ ⇒* 0` compiled into a
//!   guided chase producing a verified [`td_core::chase::ChaseProof`] that
//!   `D ⊨ D₀` — see [`part_a`];
//! * **part (B)**: from a finite cancellation semigroup without identity
//!   refuting `A₀ = 0`, the finite database `P ∪ Q` with relations (1)–(4)
//!   that satisfies all of `D` but violates `D₀` — see [`part_b`];
//! * an end-to-end [`pipeline`] and independent [`verify`] checkers
//!   (including the proof's Facts 1 and 2);
//! * a **batch layer** for corpora of instances: [`batch::solve_batch`]
//!   dedups isomorphic questions by canonical key
//!   ([`td_core::canon`]), answers the distinct remainder on a worker
//!   pool, and records settled verdicts in a sharded, capacity-bounded
//!   [`cache::DecisionCache`];
//! * a **service layer**: the long-lived, thread-safe [`engine::Engine`]
//!   owns the decision cache, a [`engine::BudgetPolicy`] minting
//!   per-request tickets, and cumulative [`engine::EngineStats`] — every
//!   entry point (one-shot [`pipeline::solve`], [`batch::solve_batch`],
//!   the `tdq` CLI, `tdq serve`) routes through it.
//!
//! The two halves are the *content* of the undecidability theorem: any
//! decision procedure for TD inference would decide the (undecidable,
//! indeed effectively inseparable) word problem of the Main Lemma.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attrs;
pub mod batch;
pub mod bridge;
pub mod cache;
pub mod deps;
pub mod engine;
pub mod error;
pub mod fastpath;
pub mod part_a;
pub mod part_b;
pub mod pipeline;
pub mod snapshot;
pub mod verify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::attrs::ReductionAttrs;
    pub use crate::batch::{solve_batch, solve_batch_with, BatchRun, BatchStats, BatchVerdict};
    pub use crate::bridge::Bridge;
    pub use crate::cache::{CachedOutcome, CachedVerdict, DecisionCache, DEFAULT_SHARD_CAPACITY};
    pub use crate::deps::{build_system, ReductionSystem, Rule, Rule2};
    pub use crate::engine::{
        BudgetPolicy, Decision, Engine, EngineConfig, EngineStats, LoadStats, RequestBudget,
        Session, SessionStats, SessionVerdict, Ticket,
    };
    pub use crate::error::RedError;
    pub use crate::fastpath::{prescreen, replay, FastBudget, FastReason, FastVerdict, Prescreen};
    pub use crate::part_a::{prove_part_a, prove_part_a_with, prove_unguided};
    pub use crate::part_b::{build_counter_model, CounterModel, RowLabel};
    pub use crate::pipeline::{
        portfolio_winner, run_portfolio, solve, solve_with, solve_with_opts, solve_with_opts_on,
        Budgets, DerivationRacer, FastPath, FastPathRacer, LaneFound, LaneRun, LaneSpend,
        ModelRacer, PhaseTimings, PipelineOutcome, PipelineRun, Racer, SolveMode, SolveOptions,
        SpendReport,
    };
    pub use crate::snapshot::{Snapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION};
    pub use crate::verify::{verify_counter_model, verify_counter_model_with, PartBReport};
}

pub use prelude::*;
