//! Batch decision pipeline: many implication questions, each answered once
//! per isomorphism class.
//!
//! Corpora of word-problem instances are full of isomorphic repeats —
//! machine-generated queries differ by symbol names, equation order, or
//! variable names while asking the same question. [`solve_batch`] exploits
//! this in three layers:
//!
//! 1. **Canonicalization** — every instance is reduced to its dependency
//!    system `(D, D₀)` and keyed by [`td_core::canon::system_key`], which
//!    is invariant under exactly the changes that cannot affect the
//!    verdict (per-column variable renaming, row permutation, premise
//!    reordering).
//! 2. **Deduplication + caching** — only the first instance of each key is
//!    solved; settled verdicts are also recorded in a shared
//!    [`DecisionCache`], so a pre-warmed cache skips even the first copy.
//!    `Unknown` verdicts are shared *within* the batch call (budgets are
//!    fixed for the call) but never written to the cross-call cache.
//! 3. **A fixed worker pool** — the distinct instances are solved on
//!    `jobs` scoped threads, each running the racing solver
//!    ([`crate::pipeline::solve_with`] under [`SolveMode::Racing`]);
//!    results are fanned back out to the input order.
//!
//! The outcome of a batch is deterministic: which instances get solved,
//! every verdict, and the [`BatchStats`] are independent of thread
//! scheduling (only wall-clock time varies).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use td_core::budget::Cancellation;
use td_core::canon::CanonKey;
use td_semigroup::presentation::Presentation;

use crate::cache::{CachedOutcome, CachedVerdict, DecisionCache};
use crate::engine::Engine;
use crate::error::Result;
use crate::pipeline::{solve_with_opts_on, Budgets, PipelineOutcome, PipelineRun, SolveOptions};

/// One instance's verdict, compressed to the numbers a batch report needs.
/// Full certificates are only materialized by the run that solved the
/// instance; isomorphic repeats share the verdict without replaying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchVerdict {
    /// `D ⊨ D₀` — derivable, with proof sizes.
    Implied {
        /// Steps of the word-problem derivation.
        derivation_steps: usize,
        /// Firings of the compiled part (A) chase proof.
        proof_firings: usize,
    },
    /// `D ⊭ D₀` over finite databases — a countermodel exists.
    Refuted {
        /// Rows of the part (B) countermodel.
        model_rows: usize,
    },
    /// Neither side settled within this batch's budgets.
    Unknown {
        /// Words visited by the derivation search.
        derivation_states: usize,
        /// Nodes visited by the model search.
        model_nodes: u64,
    },
}

/// Work accounting for one [`solve_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Instances in the batch.
    pub total: usize,
    /// Distinct canonical keys among them.
    pub unique: usize,
    /// Instances answered without running the solver — isomorphic repeats
    /// within the batch plus pre-warmed cache entries. Always
    /// `total - solved`.
    pub cache_hits: usize,
    /// Racing-solver runs actually executed.
    pub solved: usize,
    /// Among `solved`, the runs the axiom-driven fast path settled before
    /// either search started (see [`crate::fastpath`]). These still count
    /// as solver runs — the prescreen is stage 0 of the solve — so
    /// `cache_hits + solved == total` stays an invariant.
    pub fastpath: usize,
    /// Cache evictions observed on the shared [`DecisionCache`] during
    /// this call (zero unless the cache's residency bound was hit; on an
    /// engine cache shared with concurrent callers this counts *all*
    /// evictions in the window, not only this batch's). Deliberately not
    /// part of the `--cache-stats` CLI line, whose shape is pinned by the
    /// golden tests; the engine/serve stats surface it.
    pub evictions: u64,
}

/// Everything a batch call returns: per-instance verdicts and keys in
/// input order, plus the work accounting.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// One verdict per input instance, in input order.
    pub verdicts: Vec<BatchVerdict>,
    /// The canonical key of each input instance, in input order (equal
    /// keys mark the isomorphic repeats that were deduplicated).
    pub keys: Vec<CanonKey>,
    /// Work accounting.
    pub stats: BatchStats,
}

/// Compresses a full pipeline run to its [`BatchVerdict`]. A
/// fastpath-settled run compresses like the certificate it stands for:
/// implied with zero derivation work, or refuted by the probe instance's
/// row count — so cached replays and batch output stay verdict-identical
/// with the full solver.
pub(crate) fn compress(run: &PipelineRun) -> BatchVerdict {
    match &run.outcome {
        PipelineOutcome::Implied { derivation, proof } => BatchVerdict::Implied {
            derivation_steps: derivation.len(),
            proof_firings: proof.proof.len(),
        },
        PipelineOutcome::Refuted { model, .. } => BatchVerdict::Refuted {
            model_rows: model.len(),
        },
        PipelineOutcome::FastSettled { verdict } => match verdict.model_rows() {
            None => BatchVerdict::Implied {
                derivation_steps: 0,
                proof_firings: 0,
            },
            Some(rows) => BatchVerdict::Refuted { model_rows: rows },
        },
        PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        } => BatchVerdict::Unknown {
            derivation_states: *derivation_states,
            model_nodes: *model_nodes,
        },
    }
}

pub(crate) fn from_cached(outcome: &CachedOutcome) -> BatchVerdict {
    match outcome.verdict {
        CachedVerdict::Implied {
            derivation_steps,
            proof_firings,
        } => BatchVerdict::Implied {
            derivation_steps,
            proof_firings,
        },
        CachedVerdict::Refuted { model_rows } => BatchVerdict::Refuted { model_rows },
    }
}

/// Decides a batch of word-problem instances, deduplicating by canonical
/// key, consulting and feeding `cache`, and solving the distinct remainder
/// on a pool of `jobs` scoped worker threads (clamped to at least one;
/// each worker runs the racing solver). Verdicts come back in input order.
///
/// Deduplication is sound because the canonical key quotients by exactly
/// the transformations that cannot change a verdict — see
/// [`td_core::canon`].
///
/// # Errors
///
/// Fails when any item fails to canonicalize or solve (normalization,
/// reduction, or chase errors); the first failing item aborts the batch.
pub fn solve_batch(
    items: &[Presentation],
    budgets: &Budgets,
    jobs: usize,
    cache: &DecisionCache,
) -> Result<BatchRun> {
    solve_batch_with(items, budgets, jobs, cache, SolveOptions::default())
}

/// [`solve_batch`] under explicit [`SolveOptions`]: every worker solves
/// with the given scheduling mode and homomorphism strategy. Verdicts must
/// not depend on the options (the golden batch corpus is replayed under
/// `--strategy naive` to pin that), so this exists for performance runs
/// and oracle-vs-planner differentials, not for semantics.
///
/// Thin wrapper over the shared engine core ([`solve_batch_core`], the
/// same code [`Engine::solve_batch`] runs): each worker executes the raw
/// pipeline under a fresh per-item cancellation token.
///
/// # Errors
///
/// Same as [`solve_batch`].
pub fn solve_batch_with(
    items: &[Presentation],
    budgets: &Budgets,
    jobs: usize,
    cache: &DecisionCache,
    opts: SolveOptions,
) -> Result<BatchRun> {
    solve_batch_core(items, jobs, cache, &|p, _key| {
        solve_with_opts_on(p, budgets, opts, &Cancellation::new()).map(ItemOutcome::Ran)
    })
}

/// What the per-item solver produced: a pipeline run this worker actually
/// executed, or a settled outcome another flight produced while this
/// worker waited (the engine's single-flight gate — only `Ran` counts
/// toward [`BatchStats::solved`]).
#[allow(clippy::large_enum_variant)] // Ran carries the full run by design; one per worker at a time
pub(crate) enum ItemOutcome {
    /// This worker ran the racing solver.
    Ran(PipelineRun),
    /// Another in-flight request settled the key first.
    Settled(CachedOutcome),
}

/// The batch algorithm itself, parameterized over the per-item solver so
/// the one-shot wrappers and the long-lived [`Engine`] share one code
/// path. `solve_item` decides one instance (the engine passes a closure
/// that mints a per-request ticket, runs under the single-flight gate and
/// charges its cumulative meters; the one-shot wrappers pass a plain
/// raced solve).
/// The number of worker threads a fan-out phase should actually spawn:
/// never more than `jobs` (clamped to at least 1 so a zero config cannot
/// wedge a pool), never more than the `distinct` work items available,
/// and **zero** when there is no work at all. With `--jobs` defaulting to
/// the machine's core count, `jobs` routinely dwarfs the distinct-key
/// count of a small batch; spawning the surplus threads is pure overhead
/// (and an idle thread on an empty phase is worse — a spawn with nothing
/// to pull).
pub(crate) fn solver_pool_width(jobs: usize, distinct: usize) -> usize {
    jobs.max(1).min(distinct)
}

pub(crate) fn solve_batch_core(
    items: &[Presentation],
    jobs: usize,
    cache: &DecisionCache,
    solve_item: &(dyn Fn(&Presentation, CanonKey) -> Result<ItemOutcome> + Sync),
) -> Result<BatchRun> {
    let evictions_before = cache.evictions();
    // Phase 1: reduce every instance and compute its canonical key —
    // pure, per-item work, spread over the same number of workers as the
    // solving phase (contiguous chunks, so the result order is the input
    // order with no locking).
    let workers = solver_pool_width(jobs, items.len());
    let key_of = |p: &Presentation| -> Result<CanonKey> { Engine::canonical_key(p) };
    let keys: Vec<CanonKey> = if workers == 0 {
        Vec::new()
    } else {
        let chunk_len = items.len().div_ceil(workers).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|chunk| s.spawn(move || chunk.iter().map(key_of).collect::<Result<Vec<_>>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("canonicalization worker panicked"))
                .collect::<Result<Vec<Vec<_>>>>()
        })?
        .into_iter()
        .flatten()
        .collect()
    };

    // Phase 2: dedup to first occurrences, capturing pre-warmed verdicts
    // *now* — on a shared bounded cache a concurrent writer could evict
    // them before the fan-out phase, so the hit must be pinned at lookup
    // time, not re-read later.
    let mut distinct: HashSet<CanonKey> = HashSet::new();
    let mut prewarmed: HashMap<CanonKey, BatchVerdict> = HashMap::new();
    let mut to_solve: Vec<(CanonKey, usize)> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        if distinct.insert(key) {
            match cache.get(key) {
                Some(outcome) => {
                    prewarmed.insert(key, from_cached(&outcome));
                }
                None => to_solve.push((key, i)),
            }
        }
    }

    // Phase 3: the worker pool. Workers pull distinct instances from a
    // shared cursor; every verdict lands in the per-call map (and settled
    // ones additionally in the cross-call cache). `runs` counts the
    // solver executions this call actually performed — an item settled by
    // a concurrent flight while the worker waited is a cache hit, not a
    // solve.
    let runs = AtomicUsize::new(0);
    let fastpath_runs = AtomicUsize::new(0);
    let solved_now: Mutex<HashMap<CanonKey, BatchVerdict>> = Mutex::new(HashMap::new());
    let first_error: Mutex<Option<crate::error::RedError>> = Mutex::new(None);
    // The pool's shutdown signal is the shared cancellation substrate: the
    // first failing worker cancels the pool, and the rest stop pulling
    // work instead of solving instances whose results would be discarded.
    let failed = Cancellation::new();
    let cursor = AtomicUsize::new(0);
    // Never more solver threads than distinct uncached keys (and none at
    // all for a fully prewarmed batch).
    let solve_workers = solver_pool_width(jobs, to_solve.len());
    std::thread::scope(|s| {
        for _ in 0..solve_workers {
            s.spawn(|| loop {
                if failed.is_cancelled() {
                    return;
                }
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(key, item)) = to_solve.get(slot) else {
                    return;
                };
                match solve_item(&items[item], key) {
                    Ok(ItemOutcome::Ran(run)) => {
                        runs.fetch_add(1, Ordering::Relaxed);
                        if matches!(run.outcome, PipelineOutcome::FastSettled { .. }) {
                            fastpath_runs.fetch_add(1, Ordering::Relaxed);
                        }
                        let verdict = compress(&run);
                        let cached = match verdict {
                            BatchVerdict::Implied {
                                derivation_steps,
                                proof_firings,
                            } => Some(CachedVerdict::Implied {
                                derivation_steps,
                                proof_firings,
                            }),
                            BatchVerdict::Refuted { model_rows } => {
                                Some(CachedVerdict::Refuted { model_rows })
                            }
                            // Unknown depends on this call's budgets; it is
                            // shared within the batch but never cached.
                            BatchVerdict::Unknown { .. } => None,
                        };
                        if let Some(v) = cached {
                            cache.insert(
                                key,
                                CachedOutcome {
                                    verdict: v,
                                    spend: run.spend,
                                },
                            );
                        }
                        solved_now
                            .lock()
                            .expect("batch result lock poisoned")
                            .insert(key, verdict);
                    }
                    Ok(ItemOutcome::Settled(outcome)) => {
                        solved_now
                            .lock()
                            .expect("batch result lock poisoned")
                            .insert(key, from_cached(&outcome));
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .expect("batch error lock poisoned")
                            .get_or_insert(e);
                        failed.cancel();
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner().expect("batch error lock poisoned") {
        return Err(e);
    }

    // Phase 4: fan results back out to input order. Every key is covered
    // by construction: its first occurrence was either pinned from the
    // cache in phase 2 or queued and answered in phase 3 (evictions
    // cannot invalidate either map — they are per-call snapshots).
    let solved_now = solved_now.into_inner().expect("batch result lock poisoned");
    let mut verdicts = Vec::with_capacity(items.len());
    for &key in &keys {
        let verdict = solved_now
            .get(&key)
            .or_else(|| prewarmed.get(&key))
            .copied()
            .expect("every key was either solved this call or pinned from the cache");
        verdicts.push(verdict);
    }

    let solved = runs.into_inner();
    let stats = BatchStats {
        total: items.len(),
        unique: distinct.len(),
        cache_hits: items.len() - solved,
        solved,
        fastpath: fastpath_runs.into_inner(),
        evictions: cache.evictions() - evictions_before,
    };
    Ok(BatchRun {
        verdicts,
        keys,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::equation::Equation;

    fn derivable() -> Presentation {
        let alphabet = Alphabet::standard(2);
        let eqs = vec![
            Equation::parse("A1 A1 = A0", &alphabet).unwrap(),
            Equation::parse("A1 A1 = 0", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    /// The same instance under renamed symbols and reordered equations:
    /// isomorphic after reduction, so it must share the canonical key.
    fn derivable_renamed() -> Presentation {
        let alphabet = Alphabet::new(["start", "gen", "zip"], "start", "zip").unwrap();
        let eqs = vec![
            Equation::parse("gen gen = zip", &alphabet).unwrap(),
            Equation::parse("gen gen = start", &alphabet).unwrap(),
        ];
        Presentation::new(alphabet, eqs).unwrap()
    }

    fn refutable() -> Presentation {
        Presentation::new(Alphabet::standard(1), vec![]).unwrap()
    }

    #[test]
    fn batch_dedups_and_matches_single_solves() {
        let items = vec![
            derivable(),
            refutable(),
            derivable_renamed(),
            derivable(),
            refutable(),
        ];
        let cache = DecisionCache::default();
        let run = solve_batch(&items, &Budgets::default(), 2, &cache).unwrap();
        assert_eq!(run.verdicts.len(), 5);
        assert_eq!(run.keys[0], run.keys[2], "renamed copy shares the key");
        assert_eq!(run.keys[0], run.keys[3]);
        assert_eq!(run.keys[1], run.keys[4]);
        assert_ne!(run.keys[0], run.keys[1]);
        assert_eq!(run.stats.total, 5);
        assert_eq!(run.stats.unique, 2);
        assert_eq!(run.stats.solved, 2);
        assert_eq!(run.stats.cache_hits, 3);
        assert_eq!(cache.len(), 2, "both settled verdicts were cached");

        // The fanned-out verdicts agree with one-at-a-time solving.
        for (item, verdict) in items.iter().zip(&run.verdicts) {
            let single = crate::pipeline::solve(item, &Budgets::default()).unwrap();
            assert_eq!(*verdict, compress(&single));
        }
        assert!(matches!(run.verdicts[0], BatchVerdict::Implied { .. }));
        assert!(matches!(run.verdicts[1], BatchVerdict::Refuted { .. }));
        assert_eq!(run.verdicts[0], run.verdicts[2]);
    }

    #[test]
    fn prewarmed_cache_skips_all_solving() {
        let items = vec![derivable(), derivable_renamed()];
        let cache = DecisionCache::default();
        let first = solve_batch(&items, &Budgets::default(), 1, &cache).unwrap();
        assert_eq!(first.stats.solved, 1);
        let second = solve_batch(&items, &Budgets::default(), 1, &cache).unwrap();
        assert_eq!(second.stats.solved, 0);
        assert_eq!(second.stats.cache_hits, 2);
        assert_eq!(first.verdicts, second.verdicts);
    }

    #[test]
    fn unknown_is_shared_in_batch_but_not_cached() {
        // The spend-report fixture: defeats the null shortcut, derivation
        // cannot reach `0`, tiny budgets exhaust both sides.
        let alphabet = Alphabet::standard(2);
        let grow = Equation::parse("A0 A1 = A0", &alphabet).unwrap();
        let p = Presentation::new(alphabet, vec![grow]).unwrap();
        let tight = Budgets {
            derivation: td_semigroup::derivation::SearchBudget {
                max_word_len: 6,
                max_states: 50,
            },
            model: td_semigroup::model_search::ModelSearchOptions {
                min_size: 3,
                max_size: 3,
                max_nodes: 5,
            },
            chase: td_core::chase::ChaseBudget::default(),
        };
        let items = vec![p.clone(), p];
        let cache = DecisionCache::default();
        let run = solve_batch(&items, &tight, 2, &cache).unwrap();
        assert!(matches!(run.verdicts[0], BatchVerdict::Unknown { .. }));
        assert_eq!(run.verdicts[0], run.verdicts[1], "shared within the call");
        assert_eq!(run.stats.solved, 1, "deduplicated within the call");
        assert!(cache.is_empty(), "Unknown must not be cached across calls");
    }

    #[test]
    fn empty_batch() {
        let cache = DecisionCache::default();
        let run = solve_batch(&[], &Budgets::default(), 4, &cache).unwrap();
        assert!(run.verdicts.is_empty());
        assert_eq!(run.stats, BatchStats::default());
    }

    #[test]
    fn many_jobs_few_items() {
        let items = vec![derivable(), refutable()];
        let cache = DecisionCache::default();
        let run = solve_batch(&items, &Budgets::default(), 64, &cache).unwrap();
        assert_eq!(run.stats.solved, 2);
    }

    /// The clamp itself: the pool width never exceeds the distinct work
    /// count, never exceeds `jobs`, survives a zero-jobs config, and is
    /// zero — no idle thread — when there is nothing to solve.
    #[test]
    fn solver_pool_width_never_overshoots_distinct_keys() {
        assert_eq!(solver_pool_width(64, 2), 2, "jobs ≫ unique keys");
        assert_eq!(solver_pool_width(4, 4), 4);
        assert_eq!(solver_pool_width(2, 7), 2);
        assert_eq!(solver_pool_width(0, 7), 1, "zero jobs still makes progress");
        assert_eq!(solver_pool_width(64, 0), 0, "no work, no pool");
        assert_eq!(solver_pool_width(0, 0), 0);
    }

    /// Regression for jobs ≫ unique keys end to end: a wide pool over a
    /// batch with two distinct keys (and over a fully prewarmed batch,
    /// where the solver pool must be empty) stays correct and keeps the
    /// dedup accounting intact.
    #[test]
    fn wide_pool_over_few_distinct_keys_is_exact() {
        let items = vec![
            derivable(),
            refutable(),
            derivable_renamed(),
            derivable(),
            refutable(),
        ];
        let cache = DecisionCache::default();
        let run = solve_batch(&items, &Budgets::default(), 1024, &cache).unwrap();
        assert_eq!(run.stats.unique, 2);
        assert_eq!(run.stats.solved, 2, "one solve per distinct key");
        assert_eq!(run.stats.cache_hits, 3);

        // Second pass: everything prewarmed, the solver pool spawns no
        // threads at all, and the verdicts replay exactly.
        let warm = solve_batch(&items, &Budgets::default(), 1024, &cache).unwrap();
        assert_eq!(warm.stats.solved, 0);
        assert_eq!(warm.stats.cache_hits, 5);
        assert_eq!(warm.verdicts, run.verdicts);
    }
}
