//! Bridges: the row structures representing words (Fig. 2).
//!
//! "The basic idea is to represent a word A₁A₂…A_k over S by the structure
//! of Fig. 2. … All the elements across the bottom of a bridge are
//! E-equivalent, all those across the top of a bridge are E′-equivalent,
//! and each symbol Aᵢ of the word is represented by a triangle with the
//! apex having relations Aᵢ′ and Aᵢ″ to the two points on the base."
//!
//! A bridge for a word of length `k` has `k+1` base points `c₀…c_k` and `k`
//! apexes `d₁…d_k`; apex `dᵢ₊₁` is `Aᵢ′`-related to `cᵢ` and `Aᵢ″`-related
//! to `cᵢ₊₁`.

use td_core::eq_instance::EqInstance;
use td_core::ids::RowId;
use td_semigroup::word::Word;

use crate::attrs::ReductionAttrs;
use crate::error::{RedError, Result};

/// A bridge embedded in an [`EqInstance`]: row ids of its base points and
/// apexes, plus the word it represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bridge {
    word: Word,
    base: Vec<RowId>,
    apexes: Vec<RowId>,
}

impl Bridge {
    /// Builds a fresh bridge for `word` inside `eq` (adding `k+1 + k` rows)
    /// and returns it.
    ///
    /// # Errors
    ///
    /// Propagates merge errors from `eq` (an attribute outside its
    /// schema — impossible when `attrs` built the schema `eq` uses).
    pub fn build(eq: &mut EqInstance, attrs: &ReductionAttrs, word: &Word) -> Result<Bridge> {
        let k = word.len();
        let base: Vec<RowId> = (0..=k).map(|_| eq.add_row()).collect();
        let apexes: Vec<RowId> = (0..k).map(|_| eq.add_row()).collect();
        // Bottom row E-equivalent.
        for w in base.windows(2) {
            eq.merge(attrs.e(), w[0], w[1])?;
        }
        // Top row E'-equivalent.
        for w in apexes.windows(2) {
            eq.merge(attrs.e_prime(), w[0], w[1])?;
        }
        // Triangles.
        for (i, &sym) in word.syms().iter().enumerate() {
            eq.merge(attrs.prime(sym), apexes[i], base[i])?;
            eq.merge(attrs.dprime(sym), apexes[i], base[i + 1])?;
        }
        Ok(Bridge {
            word: word.clone(),
            base,
            apexes,
        })
    }

    /// The represented word.
    pub fn word(&self) -> &Word {
        &self.word
    }

    /// Base points `c₀…c_k`.
    pub fn base(&self) -> &[RowId] {
        &self.base
    }

    /// Apexes `d₁…d_k`.
    pub fn apexes(&self) -> &[RowId] {
        &self.apexes
    }

    /// Number of rows the bridge occupies.
    pub fn row_count(&self) -> usize {
        self.base.len() + self.apexes.len()
    }

    /// Checks every bridge invariant against `eq`:
    /// base pairwise `E`-equivalent, apexes pairwise `E′`-equivalent, and
    /// each triangle's `Aᵢ′` / `Aᵢ″` relations in place.
    ///
    /// # Errors
    ///
    /// Fails with [`RedError::BridgeInvariant`] naming the first broken
    /// invariant.
    pub fn validate(&self, eq: &EqInstance, attrs: &ReductionAttrs) -> Result<()> {
        let k = self.word.len();
        if self.base.len() != k + 1 || self.apexes.len() != k {
            return Err(RedError::BridgeInvariant(format!(
                "row counts: base {} (want {}), apexes {} (want {})",
                self.base.len(),
                k + 1,
                self.apexes.len(),
                k
            )));
        }
        for (i, w) in self.base.windows(2).enumerate() {
            if !eq.same(attrs.e(), w[0], w[1]) {
                return Err(RedError::BridgeInvariant(format!(
                    "base points {i} and {} not E-equivalent",
                    i + 1
                )));
            }
        }
        for (i, w) in self.apexes.windows(2).enumerate() {
            if !eq.same(attrs.e_prime(), w[0], w[1]) {
                return Err(RedError::BridgeInvariant(format!(
                    "apexes {i} and {} not E'-equivalent",
                    i + 1
                )));
            }
        }
        for (i, &sym) in self.word.syms().iter().enumerate() {
            if !eq.same(attrs.prime(sym), self.apexes[i], self.base[i]) {
                return Err(RedError::BridgeInvariant(format!(
                    "apex {i} lacks the {}' relation to its left base point",
                    attrs.alphabet().name(sym)
                )));
            }
            if !eq.same(attrs.dprime(sym), self.apexes[i], self.base[i + 1]) {
                return Err(RedError::BridgeInvariant(format!(
                    "apex {i} lacks the {}'' relation to its right base point",
                    attrs.alphabet().name(sym)
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::alphabet::Alphabet;

    fn setup() -> (ReductionAttrs, Alphabet) {
        let alphabet = Alphabet::standard(2);
        (ReductionAttrs::new(&alphabet).unwrap(), alphabet)
    }

    #[test]
    fn single_symbol_bridge() {
        let (attrs, alphabet) = setup();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let w = Word::single(alphabet.a0());
        let b = Bridge::build(&mut eq, &attrs, &w).unwrap();
        assert_eq!(b.row_count(), 3);
        assert_eq!(eq.len(), 3);
        b.validate(&eq, &attrs).unwrap();
        // The apex is A0'-related to c0 and A0''-related to c1.
        assert!(eq.same(attrs.prime(alphabet.a0()), b.apexes()[0], b.base()[0]));
        assert!(eq.same(attrs.dprime(alphabet.a0()), b.apexes()[0], b.base()[1]));
        // Distinct relations stay trivial.
        assert!(!eq.same(attrs.prime(alphabet.zero()), b.apexes()[0], b.base()[0]));
    }

    #[test]
    fn longer_bridges_validate() {
        let (attrs, alphabet) = setup();
        for text in ["A0 A1", "A0 A1 0", "A1 A1 A1 A1"] {
            let w = Word::parse(text, &alphabet).unwrap();
            let mut eq = EqInstance::new(attrs.schema().clone(), 0);
            let b = Bridge::build(&mut eq, &attrs, &w).unwrap();
            assert_eq!(b.base().len(), w.len() + 1);
            assert_eq!(b.apexes().len(), w.len());
            b.validate(&eq, &attrs).unwrap();
        }
    }

    #[test]
    fn base_is_fully_e_equivalent() {
        let (attrs, alphabet) = setup();
        let w = Word::parse("A0 A1 0", &alphabet).unwrap();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let b = Bridge::build(&mut eq, &attrs, &w).unwrap();
        for &x in b.base() {
            for &y in b.base() {
                assert!(eq.same(attrs.e(), x, y));
            }
            for &a in b.apexes() {
                assert!(!eq.same(attrs.e(), x, a), "apexes are not in the base row");
            }
        }
    }

    #[test]
    fn corrupt_bridge_detected() {
        let (attrs, alphabet) = setup();
        let w = Word::parse("A0 A1", &alphabet).unwrap();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let b = Bridge::build(&mut eq, &attrs, &w).unwrap();
        // Claim the bridge represents a different word: triangle check fails.
        let lying = Bridge {
            word: Word::parse("A1 A1", &alphabet).unwrap(),
            base: b.base().to_vec(),
            apexes: b.apexes().to_vec(),
        };
        assert!(matches!(
            lying.validate(&eq, &attrs),
            Err(RedError::BridgeInvariant(_))
        ));
        // Wrong arity of parts.
        let truncated = Bridge {
            word: b.word().clone(),
            base: b.base()[..1].to_vec(),
            apexes: b.apexes().to_vec(),
        };
        assert!(truncated.validate(&eq, &attrs).is_err());
    }

    #[test]
    fn two_bridges_are_disjoint() {
        let (attrs, alphabet) = setup();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let b1 = Bridge::build(&mut eq, &attrs, &Word::single(alphabet.a0())).unwrap();
        let b2 = Bridge::build(&mut eq, &attrs, &Word::single(alphabet.a0())).unwrap();
        b1.validate(&eq, &attrs).unwrap();
        b2.validate(&eq, &attrs).unwrap();
        assert!(!eq.same(attrs.e(), b1.base()[0], b2.base()[0]));
        assert!(!eq.same(attrs.e_prime(), b1.apexes()[0], b2.apexes()[0]));
    }
}
