//! Independent verification of the reduction's claims.
//!
//! These checkers use only the database layer's satisfaction machinery —
//! none of the construction code — so they serve as genuine cross-checks:
//!
//! * [`verify_counter_model`] — part (B): every member of `D` holds, `D₀`
//!   fails, and the proof's **Fact 1** and **Fact 2** hold ("Each ≈_{A′}
//!   equivalence class has cardinality 1 or 2. In particular, the only
//!   equivalence classes contained entirely within P or entirely within Q
//!   are trivial." — and the same for ≈_{A″});
//! * [`structural_report`] — the headline structural claims: at most five
//!   antecedents per dependency and exactly `2n+2` attributes.

use td_core::homomorphism::MatchStrategy;
use td_core::satisfaction::{find_violation_with, satisfies_with};

use crate::deps::ReductionSystem;
use crate::part_b::{CounterModel, RowLabel};

/// Outcome of verifying a part (B) countermodel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartBReport {
    /// Names of dependencies in `D` that *failed* (must be empty).
    pub violated_deps: Vec<String>,
    /// `true` if `D₀` fails in the model (it must).
    pub d0_fails: bool,
    /// Fact 1 holds: every `≈_{A′}` class has size ≤ 2 and nontrivial
    /// classes mix `P` and `Q`.
    pub fact1: bool,
    /// Fact 2 holds: the same for `≈_{A″}`.
    pub fact2: bool,
}

impl PartBReport {
    /// `true` when the countermodel certifies part (B).
    pub fn ok(&self) -> bool {
        self.violated_deps.is_empty() && self.d0_fails && self.fact1 && self.fact2
    }
}

fn classes_ok(model: &CounterModel, attr: td_core::ids::AttrId) -> bool {
    let classes = model.eq_instance.classes(attr);
    classes.iter().all(|class| {
        match class.len() {
            1 => true,
            2 => {
                let p0 = matches!(model.labels[class[0]], RowLabel::P(_));
                let p1 = matches!(model.labels[class[1]], RowLabel::P(_));
                p0 != p1 // one P row, one Q row
            }
            _ => false,
        }
    })
}

/// Verifies a part (B) countermodel against its reduction system, using
/// the default [`MatchStrategy::Indexed`] matcher.
pub fn verify_counter_model(system: &ReductionSystem, model: &CounterModel) -> PartBReport {
    verify_counter_model_with(MatchStrategy::default(), system, model)
}

/// [`verify_counter_model`] under an explicit homomorphism
/// [`MatchStrategy`]: the satisfaction checks over `D` and `D₀` run end to
/// end with the chosen matcher, so `tdq … --strategy naive` exercises the
/// full-scan oracle through certificate verification too.
pub fn verify_counter_model_with(
    strategy: MatchStrategy,
    system: &ReductionSystem,
    model: &CounterModel,
) -> PartBReport {
    let violated_deps = system
        .deps
        .iter()
        .filter(|td| find_violation_with(strategy, &model.instance, td).is_some())
        .map(|td| td.name().to_owned())
        .collect();
    let d0_fails = !satisfies_with(strategy, &model.instance, &system.d0);
    let alphabet = system.attrs.alphabet().clone();
    let fact1 = alphabet
        .syms()
        .all(|s| classes_ok(model, system.attrs.prime(s)));
    let fact2 = alphabet
        .syms()
        .all(|s| classes_ok(model, system.attrs.dprime(s)));
    PartBReport {
        violated_deps,
        d0_fails,
        fact1,
        fact2,
    }
}

/// The headline structural facts of the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructuralReport {
    /// Number of alphabet symbols `n`.
    pub n_symbols: usize,
    /// Number of attributes (must be `2n+2`).
    pub n_attributes: usize,
    /// Number of equations (rules).
    pub n_rules: usize,
    /// Number of dependencies in `D` (4 per product rule, 2 per identify
    /// rule).
    pub n_deps: usize,
    /// What `n_deps` must equal given the rule kinds.
    pub expected_deps: usize,
    /// Maximum antecedent count over `D ∪ {D₀}` (must be ≤ 5).
    pub max_antecedents: usize,
}

impl StructuralReport {
    /// `true` when the paper's structural claims hold.
    pub fn ok(&self) -> bool {
        self.n_attributes == 2 * self.n_symbols + 2
            && self.n_deps == self.expected_deps
            && self.max_antecedents <= 5
    }
}

/// Computes the structural report of a reduction system.
pub fn structural_report(system: &ReductionSystem) -> StructuralReport {
    StructuralReport {
        n_symbols: system.attrs.alphabet().len(),
        n_attributes: system.attrs.arity(),
        n_rules: system.rules.len(),
        n_deps: system.deps.len(),
        expected_deps: system.rules.iter().map(|r| r.dep_count()).sum(),
        max_antecedents: system.max_antecedents(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::build_system;
    use crate::part_b::build_counter_model;
    use td_semigroup::alphabet::Alphabet;
    use td_semigroup::cayley::Interpretation;
    use td_semigroup::families::{cyclic_nilpotent, null_semigroup};
    use td_semigroup::presentation::Presentation;

    fn refutable() -> Presentation {
        let alphabet = Alphabet::standard(1);
        let mut p = Presentation::new(alphabet, vec![]).unwrap();
        p.saturate_with_zero_equations();
        p
    }

    #[test]
    fn minimal_model_report_is_clean() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let report = verify_counter_model(&system, &model);
        assert!(report.ok(), "{report:?}");
        assert!(report.violated_deps.is_empty());
        assert!(report.d0_fails);
        assert!(report.fact1 && report.fact2);
    }

    #[test]
    fn nilpotent_model_reports_are_clean() {
        let p = refutable();
        let system = build_system(&p).unwrap();
        for n in [3usize, 4, 6] {
            let g = cyclic_nilpotent(n);
            let interp = Interpretation::from_raw([1, 0]);
            let model = build_counter_model(&system, &p, &g, &interp).unwrap();
            let report = verify_counter_model(&system, &model);
            assert!(report.ok(), "n={n}: {report:?}");
        }
    }

    /// Negative testing: corrupting the countermodel must be caught.
    #[test]
    fn corrupted_models_are_rejected() {
        use td_core::ids::RowId;
        let p = refutable();
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);

        // Corruption 1: link a P row and a Q row under E (breaks the
        // "E trivial on Q" shape → D0's antecedent may suddenly fire, or a
        // dependency breaks; either way the report must flag something).
        let mut model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let p_row = model.p_rows().next().unwrap();
        let q_row = model.q_rows().next().unwrap();
        model
            .eq_instance
            .merge(system.attrs.e(), p_row, q_row)
            .unwrap();
        model.instance = model.eq_instance.to_instance();
        let report = verify_counter_model(&system, &model);
        assert!(!report.ok(), "corruption must be detected: {report:?}");

        // Corruption 2: oversize an A'-class (violates Fact 1).
        let mut model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let a0 = system.attrs.alphabet().a0();
        let rows: Vec<RowId> = model.p_rows().collect();
        model
            .eq_instance
            .merge(system.attrs.prime(a0), rows[0], rows[1])
            .unwrap();
        model.instance = model.eq_instance.to_instance();
        let report = verify_counter_model(&system, &model);
        assert!(
            !report.fact1 || !report.ok(),
            "Fact 1 violation: {report:?}"
        );
    }

    #[test]
    fn structural_claims() {
        for n_regular in 1..=4 {
            let alphabet = Alphabet::standard(n_regular);
            let mut p = Presentation::new(alphabet, vec![]).unwrap();
            p.saturate_with_zero_equations();
            let system = build_system(&p).unwrap();
            let report = structural_report(&system);
            assert!(report.ok(), "{report:?}");
            assert_eq!(report.n_attributes, 2 * (n_regular + 1) + 2);
            assert_eq!(report.max_antecedents, 5);
        }
    }
}
