//! Workload generators for the benchmark harness and the experiment tables.
//!
//! Scaling families (used by the Criterion benches and the `tables` binary):
//!
//! * [`relabel_chain`] — `A₀ = X₁, X₁ = X₂, …, X_k = 0`: a derivable
//!   instance whose shortest derivation has exactly `k+1` relabeling steps
//!   (exercises the `D5`/`D6` dependencies one-for-one);
//! * [`product_chain`] — `X·Yᵢ₊₁ = Yᵢ` (with `Y₀ = A₀`) and `X·Y_k = 0`:
//!   a derivable instance whose shortest derivation expands `k` times, then
//!   contracts through the zero — `2k` steps with intermediate words of
//!   length up to `k+1` (exercises `D1…D4`);
//! * [`refutable_with_symbols`] — zero equations only over an `n`-symbol
//!   alphabet: refutable with the 2-element null semigroup, scaling the
//!   attribute count `2n+2`;
//! * random instances and full-TD families for the chase microbenchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use td_core::prelude::*;
use td_semigroup::prelude::*;

/// The garment schema of the paper's introduction.
pub fn garment_schema() -> Schema {
    Schema::new("R", ["SUPPLIER", "STYLE", "SIZE"]).expect("static schema")
}

/// Fig. 1: `R(a,b,c) & R(a,b′,c′) ⇒ ∃a* R(a*,b,c′)`.
pub fn fig1_td() -> Td {
    TdBuilder::new(garment_schema())
        .antecedent(["a", "b", "c"])
        .expect("arity 3")
        .antecedent(["a", "b'", "c'"])
        .expect("arity 3")
        .conclusion(["*", "b", "c'"])
        .expect("arity 3")
        .build("fig1")
        .expect("well-formed")
}

/// The full join-on-supplier dependency that implies Fig. 1.
pub fn join_on_supplier() -> Td {
    TdBuilder::new(garment_schema())
        .antecedent(["a", "b", "c"])
        .expect("arity 3")
        .antecedent(["a", "b'", "c'"])
        .expect("arity 3")
        .conclusion(["a", "b", "c'"])
        .expect("arity 3")
        .build("join-supplier")
        .expect("well-formed")
}

/// A random instance over `schema`: `rows` tuples, each column drawing from
/// `values_per_column` values. Deterministic in `seed`.
pub fn random_instance(
    schema: &Schema,
    rows: usize,
    values_per_column: u32,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new(schema.clone());
    for _ in 0..rows {
        let tuple: Vec<u32> = (0..schema.arity())
            .map(|_| rng.gen_range(0..values_per_column))
            .collect();
        inst.insert_values(tuple).expect("arity matches");
    }
    inst
}

/// The relabel chain: `A₀ = X₁, X₁ = X₂, …, X_k = 0` (zero-saturated).
/// Derivable in exactly `k+1` replacement steps.
pub fn relabel_chain(k: usize) -> Presentation {
    let mut names: Vec<String> = vec!["A0".into()];
    names.extend((1..=k).map(|i| format!("X{i}")));
    names.push("0".into());
    let alphabet = Alphabet::new(names, "A0", "0").expect("distinct names");
    let mut eqs = Vec::with_capacity(k + 1);
    let word = |name: &str| Word::parse(name, &alphabet).expect("known symbol");
    let mut prev = "A0".to_owned();
    for i in 1..=k {
        let cur = format!("X{i}");
        eqs.push(Equation::new(word(&prev), word(&cur)));
        prev = cur;
    }
    eqs.push(Equation::new(word(&prev), word("0")));
    let mut p = Presentation::new(alphabet, eqs).expect("symbols in range");
    p.saturate_with_zero_equations();
    p
}

/// The product chain: `X·Yᵢ₊₁ = Yᵢ` for `i = 0..k-1` (writing `Y₀` for
/// `A₀`), plus `X·Y_k = 0` (zero-saturated). The shortest derivation does
/// `k` expansions, one contraction to a word containing `0`, then `k−1`
/// zero-absorption contractions: `2k` steps total.
///
/// # Panics
/// Panics if `k == 0`.
pub fn product_chain(k: usize) -> Presentation {
    assert!(k >= 1);
    let mut names: Vec<String> = vec!["A0".into(), "X".into()];
    names.extend((1..=k).map(|i| format!("Y{i}")));
    names.push("0".into());
    let alphabet = Alphabet::new(names, "A0", "0").expect("distinct names");
    let w = |text: &str| Word::parse(text, &alphabet).expect("known symbols");
    let mut eqs = Vec::with_capacity(k + 1);
    // X Y1 = A0; X Y_{i+1} = Y_i; X Y_k = 0.
    eqs.push(Equation::new(w("X Y1"), w("A0")));
    for i in 1..k {
        eqs.push(Equation::new(
            w(&format!("X Y{}", i + 1)),
            w(&format!("Y{i}")),
        ));
    }
    eqs.push(Equation::new(w(&format!("X Y{k}")), w("0")));
    let mut p = Presentation::new(alphabet, eqs).expect("symbols in range");
    p.saturate_with_zero_equations();
    p
}

/// A refutable instance over `n_regular + 1` symbols: zero equations only.
/// The 2-element null semigroup refutes it; the attribute count of the
/// reduction is `2(n_regular + 1) + 2`.
pub fn refutable_with_symbols(n_regular: usize) -> Presentation {
    let alphabet = Alphabet::standard(n_regular);
    let mut p = Presentation::new(alphabet, vec![]).expect("no equations");
    p.saturate_with_zero_equations();
    p
}

/// A part (B) workload whose countermodel grows linearly: the zero-only
/// presentation over `{A0, A1, 0}` refuted by the cyclic nilpotent
/// semigroup of order `n` with `A0 ↦ a^{n-1}` (the deepest element) and
/// `A1 ↦ a`. Then `P = {I, a, …, a^{n-1}}` has `n+…` elements and `Q` one
/// triple per `A1`-step, so the countermodel has `Θ(n)` rows.
///
/// Returns `(presentation, semigroup, interpretation)`.
pub fn nilpotent_countermodel_workload(
    n: usize,
) -> (Presentation, FiniteSemigroup, Interpretation) {
    assert!(n >= 3, "need at least a and a^2");
    let p = refutable_with_symbols(2); // A0 A1 0
    let g = cyclic_nilpotent(n);
    let interp = Interpretation::from_raw([n - 1, 1, 0]);
    (p, g, interp)
}

/// A duplicate-heavy batch corpus: `copies` disguised copies of each of
/// four base word-problem instances (two derivable instances whose BFS
/// derivation searches do real work, a refutable zero-only instance, and
/// the running two-generator example). Copy `j` of an instance rotates
/// its equation list by `j` and renames every symbol — changes that leave
/// the reduced dependency system isomorphic, so canonical-key
/// deduplication must collapse the corpus back to the four originals.
/// This is the `batch_throughput` bench workload.
pub fn duplicate_heavy_corpus(copies: usize) -> Vec<Presentation> {
    let bases: Vec<Presentation> = vec![
        product_chain(6),
        product_chain(5),
        refutable_with_symbols(2),
        {
            let alphabet = Alphabet::standard(2);
            let eqs = vec![
                Equation::parse("A1 A1 = A0", &alphabet).expect("well-formed"),
                Equation::parse("A1 A1 = 0", &alphabet).expect("well-formed"),
            ];
            let mut p = Presentation::new(alphabet, eqs).expect("symbols in range");
            p.saturate_with_zero_equations();
            p
        },
    ];
    let mut corpus = Vec::with_capacity(bases.len() * copies);
    for (b, base) in bases.iter().enumerate() {
        for j in 0..copies {
            // Renamed symbols (order preserved — the reduction keys on
            // structure, not names) and rotated equations.
            let alphabet = base.alphabet();
            let names: Vec<String> = (0..alphabet.len())
                .map(|s| format!("S{b}_{j}_{s}"))
                .collect();
            let a0 = names[alphabet.a0().index()].clone();
            let zero = names[alphabet.zero().index()].clone();
            let renamed = Alphabet::new(names, &a0, &zero).expect("distinct names");
            let mut eqs: Vec<Equation> = base
                .equations()
                .iter()
                .map(|eq| {
                    let side =
                        |w: &Word| Word::new(w.syms().iter().copied()).expect("same symbol ids");
                    Equation::new(side(&eq.lhs), side(&eq.rhs))
                })
                .collect();
            let rot = j % eqs.len().max(1);
            eqs.rotate_left(rot);
            corpus.push(Presentation::new(renamed, eqs).expect("same symbol ids"));
        }
    }
    corpus
}

/// The number of leading instances of [`easy_heavy_corpus`] that are
/// fast-path eligible by construction (probe-refutable presentations and
/// subsumption-derivable aliases). `32 / 48 = 66%` of the corpus.
pub const EASY_HEAVY_ELIGIBLE: usize = 32;

/// The fast-path acceptance corpus: 48 word-problem instances, each with a
/// distinct canonical key, ordered eligible-first.
///
/// * indices `0..24` — probe-refutable presentations: zero-only empties,
///   nil powers, products annihilating to zero, and word-word equations
///   (including `A₀`-free "junk" whose dependencies grow the probe sweep
///   without touching the goal tableau). For all of these the frozen goal
///   tableau is already a fixpoint of every dependency, so the refutation
///   probe certifies `Refuted`;
/// * indices `24..32` — `A₀ = 0` aliases over small alphabets, with and
///   without extra nil equations: derivable, settled by the subsumption
///   stage in one premise scan;
/// * indices `32..48` — instances the fast path must *bail* on and hand to
///   the portfolio: short relabel chains, the one-step product chain, the
///   running two-generator example, idempotents, absorptions, and other
///   goal-relevant equations that need a real derivation or countermodel
///   search. Each is chosen to keep the full solve in the sub-millisecond
///   range: a single multi-millisecond derivation would dominate the whole
///   corpus and drown the easy-side signal.
///
/// Every presentation keeps its alphabet small (≤ 4 regular symbols): the
/// point of the corpus is the *mix*, not per-instance bulk, and small
/// instances keep the common canonicalize-and-reduce prefix — paid
/// identically by the fast path and the baseline — from drowning the
/// portfolio spend the prescreen removes.
///
/// The first [`EASY_HEAVY_ELIGIBLE`] instances are the eligibility claim
/// the `fastpath_prescreen` bench asserts: every one must be settled by
/// the prescreen with zero chase/model-search spend.
pub fn easy_heavy_corpus() -> Vec<Presentation> {
    let parse = |n: usize, eqs: &[&str]| {
        let alphabet = Alphabet::standard(n);
        let eqs = eqs
            .iter()
            .map(|e| Equation::parse(e, &alphabet).expect("well-formed"))
            .collect();
        let mut p = Presentation::new(alphabet, eqs).expect("symbols in range");
        p.saturate_with_zero_equations();
        p
    };
    let mut corpus = Vec::with_capacity(48);
    // Probe-refuted: zero-only empties.
    corpus.extend((1..=3).map(refutable_with_symbols));
    // Probe-refuted: nil powers and products annihilating to zero.
    corpus.push(parse(1, &["A0 A0 = 0"]));
    corpus.push(parse(1, &["A0 A0 A0 = 0"]));
    corpus.push(parse(2, &["A0 A1 = 0"]));
    corpus.push(parse(2, &["A1 A0 = 0"]));
    corpus.push(parse(2, &["A0 A1 = 0", "A1 A0 = 0"]));
    // Probe-refuted: word-word equations (dependencies live on fresh
    // product symbols, so the goal tableau stays a fixpoint).
    corpus.push(parse(2, &["A0 A0 = A1"]));
    corpus.push(parse(2, &["A0 A0 = A1", "A1 A1 = A1"]));
    corpus.push(parse(1, &["A0 A0 = A0 A0 A0"]));
    corpus.push(parse(2, &["A0 A1 = A1 A1"]));
    corpus.push(parse(2, &["A0 A0 = A1 A1"]));
    corpus.push(parse(2, &["A0 A0 = A1 A0"]));
    // Probe-refuted: `A₀`-free junk equations — the dependency set the
    // probe must sweep grows while the goal tableau stays untouched.
    corpus.push(parse(2, &["A1 A1 = A1"]));
    corpus.push(parse(3, &["A1 A1 = A1", "A2 A2 = A2"]));
    corpus.push(parse(3, &["A1 A2 = A2 A1"]));
    corpus.push(parse(2, &["A1 A1 = 0"]));
    corpus.push(parse(3, &["A1 A1 = 0", "A2 A2 = 0"]));
    corpus.push(parse(3, &["A1 A2 = 0"]));
    corpus.push(parse(3, &["A1 A1 = A2"]));
    corpus.push(parse(3, &["A1 A1 = A2", "A2 A2 = 0"]));
    corpus.push(parse(2, &["A1 A1 = A1 A1 A1"]));
    corpus.push(parse(3, &["A1 A2 = A2 A2"]));
    // Subsumption-derived aliases, with and without junk to scan past.
    corpus.extend((1..=4).map(|n| parse(n, &["A0 = 0"])));
    corpus.push(parse(2, &["A0 = 0", "A1 A1 = 0"]));
    corpus.push(parse(3, &["A0 = 0", "A1 A1 = 0"]));
    corpus.push(parse(4, &["A0 = 0", "A1 A1 = 0"]));
    corpus.push(parse(3, &["A0 = 0", "A1 A2 = 0"]));
    debug_assert_eq!(corpus.len(), EASY_HEAVY_ELIGIBLE);
    // Hard tail: the prescreen bails and the portfolio does the work.
    corpus.extend((1..=3).map(relabel_chain));
    corpus.push(product_chain(1));
    corpus.push(parse(2, &["A1 A1 = A0", "A1 A1 = 0"]));
    corpus.push(parse(1, &["A0 A0 = A0"]));
    corpus.push(parse(2, &["A0 A0 = A0"]));
    corpus.push(parse(3, &["A0 A0 = A0"]));
    corpus.push(parse(2, &["A0 A1 = A0"]));
    corpus.push(parse(2, &["A1 A0 = A0"]));
    corpus.push(parse(2, &["A0 A1 = A0", "A1 A0 = A0"]));
    corpus.push(parse(2, &["A1 A1 = A0"]));
    corpus.push(parse(3, &["A1 A1 = A0"]));
    corpus.push(parse(3, &["A1 A2 = A0"]));
    corpus.push(parse(2, &["A0 = A1"]));
    corpus.push(parse(2, &["A0 A1 = A1 A0", "A1 A1 = A0"]));
    debug_assert_eq!(corpus.len(), 48);
    corpus
}

/// A family of full TDs over an `arity`-column schema: for each adjacent
/// column pair `(i, i+1)`, the "join" dependency that shares column `i`
/// between two rows and re-combines them. All are full, so
/// [`td_core::inference::implies_full`] decides them exactly.
pub fn full_td_family(arity: usize) -> (Schema, Vec<Td>) {
    let names: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
    let schema = Schema::new("R", names).expect("distinct names");
    let mut tds = Vec::new();
    for join_col in 0..arity {
        let mut b = TdBuilder::new(schema.clone());
        let row1: Vec<String> = (0..arity).map(|c| format!("x{c}")).collect();
        let row2: Vec<String> = (0..arity)
            .map(|c| {
                if c == join_col {
                    format!("x{c}")
                } else {
                    format!("y{c}")
                }
            })
            .collect();
        // Conclusion: row1's values left of the join column, row2's right.
        let concl: Vec<String> = (0..arity)
            .map(|c| {
                if c <= join_col {
                    format!("x{c}")
                } else {
                    format!("y{c}")
                }
            })
            .collect();
        b = b
            .antecedent(row1.iter().map(String::as_str))
            .expect("arity");
        b = b
            .antecedent(row2.iter().map(String::as_str))
            .expect("arity");
        b = b
            .conclusion(concl.iter().map(String::as_str))
            .expect("arity");
        tds.push(b.build(format!("join-{join_col}")).expect("well-formed"));
    }
    (schema, tds)
}

/// A full-TD decision workload whose chase must materialize two complete
/// products before concluding: `d0` has two groups of `k` antecedent rows,
/// each group sharing its column-0 "hub" variable, and a conclusion that
/// mixes group 0's hub with group 1's attributes. Chasing the frozen
/// tableau with [`full_td_family`]'s join dependencies closes each group
/// into its `k^(arity-1)`-row product, the groups never interact, and the
/// mixed conclusion is never produced — so deciding the (negative)
/// implication costs the full closure. This is the `full_td_decision`
/// bench's large fixture.
pub fn two_star_tableau_goal(schema: &Schema, k: usize) -> Td {
    let arity = schema.arity();
    let mut b = TdBuilder::new(schema.clone());
    let mut rows: Vec<Vec<String>> = Vec::new();
    for g in 0..2usize {
        for r in 0..k {
            let row: Vec<String> = (0..arity)
                .map(|c| {
                    if c == 0 {
                        format!("a{g}")
                    } else {
                        format!("v{g}_{r}_{c}")
                    }
                })
                .collect();
            rows.push(row);
        }
    }
    for r in &rows {
        b = b.antecedent(r.iter().map(String::as_str)).expect("arity");
    }
    let concl: Vec<String> = (0..arity)
        .map(|c| {
            if c == 0 {
                "a0".to_string()
            } else {
                rows[k][c].clone()
            }
        })
        .collect();
    b.conclusion(concl.iter().map(String::as_str))
        .expect("arity")
        .build("two-star")
        .expect("well-formed")
}

/// Random embedded TDs over `schema`: `n_antecedents` rows with variables
/// drawn from a small pool per column, plus a conclusion mixing antecedent
/// variables (per column, probability `existential_pct`% of being
/// existential). Deterministic in `seed`.
pub fn random_td(
    schema: &Schema,
    n_antecedents: usize,
    vars_per_column: u32,
    existential_pct: u32,
    seed: u64,
    name: &str,
) -> Td {
    use td_core::ids::Var;
    use td_core::td::TdRow;
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = schema.arity();
    let antecedents: Vec<TdRow> = (0..n_antecedents)
        .map(|_| TdRow::new((0..arity).map(|_| Var::new(rng.gen_range(0..vars_per_column)))))
        .collect();
    let conclusion = TdRow::new((0..arity).map(|c| {
        if rng.gen_range(0..100u32) < existential_pct {
            Var::new(vars_per_column + 1) // fresh: never used in antecedents
        } else {
            // Reuse a variable seen in this column.
            let row = rng.gen_range(0..n_antecedents);
            antecedents[row].get(td_core::ids::AttrId::from(c))
        }
    }));
    Td::new(schema.clone(), antecedents, conclusion, name).expect("arities match")
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_semigroup::derivation::{search_goal_derivation, SearchBudget};

    #[test]
    fn relabel_chain_derivation_length() {
        for k in 1..=4 {
            let p = relabel_chain(k);
            let r = search_goal_derivation(&p, &SearchBudget::default());
            let d = r.derivation().expect("derivable by construction");
            assert_eq!(d.len(), k + 1, "k={k}");
        }
    }

    #[test]
    fn product_chain_derivation_length() {
        for k in 1..=4 {
            let p = product_chain(k);
            let r = search_goal_derivation(
                &p,
                &SearchBudget {
                    max_word_len: k + 2,
                    max_states: 500_000,
                },
            );
            let d = r.derivation().expect("derivable by construction");
            assert_eq!(d.len(), 2 * k, "k={k}");
        }
    }

    #[test]
    fn nilpotent_workload_scales_linearly() {
        use td_reduction::prelude::*;
        for n in [3usize, 5, 9] {
            let (p, g, interp) = nilpotent_countermodel_workload(n);
            let system = build_system(&p).unwrap();
            let model = build_counter_model(&system, &p, &g, &interp).unwrap();
            assert!(model.len() >= 2 * n - 1, "n={n}: {} rows", model.len());
            assert!(verify_counter_model(&system, &model).ok(), "n={n}");
        }
    }

    #[test]
    fn refutable_family_is_refutable() {
        for n in 1..=3 {
            let p = refutable_with_symbols(n);
            assert!(td_semigroup::families::null_counter_model(&p).is_some());
        }
    }

    #[test]
    fn full_td_family_is_full() {
        let (_, tds) = full_td_family(4);
        assert_eq!(tds.len(), 4);
        assert!(tds.iter().all(Td::is_full));
    }

    #[test]
    fn random_generators_are_deterministic() {
        let s = garment_schema();
        let a = random_instance(&s, 10, 4, 42);
        let b = random_instance(&s, 10, 4, 42);
        assert_eq!(a, b);
        let t1 = random_td(&s, 3, 2, 30, 7, "t");
        let t2 = random_td(&s, 3, 2, 30, 7, "t");
        assert!(t1.eq_up_to_renaming(&t2));
    }

    #[test]
    fn fig1_and_join_relate() {
        use td_core::chase::ChaseBudget;
        use td_core::inference::implies;
        let v = implies(
            std::slice::from_ref(&join_on_supplier()),
            &fig1_td(),
            ChaseBudget::default(),
        )
        .unwrap();
        assert!(v.is_implied());
    }
}
