//! Regenerates every table and figure of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p td-bench --bin tables [--release] [FILTER…]
//! ```
//!
//! With no arguments all experiments run; otherwise only those whose id
//! contains one of the filters (e.g. `f1`, `part-a`, `t3`).

use std::time::Instant;

use td_bench::*;
use td_core::chase::{ChaseBudget, ChaseOutcome};
use td_core::diagram::Diagram;
use td_core::inference;
use td_core::render::{diagram_to_ascii, td_to_string};
use td_core::satisfaction::satisfies;
use td_reduction::prelude::*;
use td_reduction::verify::structural_report;
use td_semigroup::derivation::{search_goal_derivation, SearchBudget};
use td_semigroup::normalize::normalize;
use td_semigroup::prelude::*;

fn wants(filters: &[String], id: &str) -> bool {
    filters.is_empty()
        || filters
            .iter()
            .any(|f| id.contains(f.trim_start_matches("--")))
}

fn header(id: &str, title: &str) {
    println!("\n## {id} — {title}\n");
}

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();

    if wants(&filters, "f1") {
        fig1();
    }
    if wants(&filters, "f2") {
        fig2();
    }
    if wants(&filters, "f3") {
        fig3();
    }
    if wants(&filters, "part-a") {
        part_a();
    }
    if wants(&filters, "part-b") {
        part_b();
    }
    if wants(&filters, "t1") {
        t1_structure();
    }
    if wants(&filters, "t2") {
        t2_full_vs_embedded();
    }
    if wants(&filters, "t3") {
        t3_normalization();
    }
    if wants(&filters, "t4") {
        t4_chase_policies();
    }
    if wants(&filters, "t5") {
        t5_word_problem();
    }
}

/// T4 — chase-policy ablation: the restricted chase terminates where the
/// oblivious chase runs away.
fn t4_chase_policies() {
    use td_core::chase::{ChaseEngine, ChasePolicy};
    header("T4", "chase policy ablation (restricted vs oblivious)");
    println!("| rows | policy | outcome | steps fired | final rows |");
    println!("|---|---|---|---|---|");
    for rows in [3usize, 5, 8] {
        let inst = random_instance(&garment_schema(), rows, 3, 17);
        // An embedded dependency: someone supplies each (style, size) pair
        // a supplier spans. Self-witnessing patterns keep the restricted
        // chase finite; the oblivious chase keeps inventing suppliers.
        let tds = vec![fig1_td()];
        for policy in [ChasePolicy::Restricted, ChasePolicy::Oblivious] {
            let budget = ChaseBudget {
                max_steps: 2_000,
                max_rows: 2_000,
                max_rounds: 25,
            };
            let mut engine = ChaseEngine::new(&tds, inst.clone(), policy, budget).unwrap();
            let outcome = engine.run(None);
            println!(
                "| {rows} | {policy:?} | {outcome:?} | {} | {} |",
                engine.steps_fired(),
                engine.state().len()
            );
        }
    }
    println!("\n(the oblivious chase re-fires witnessed triggers, so it diverges on");
    println!(" any embedded dependency; the restricted chase is the right default.)");
}

/// F1 — Fig. 1: the example dependency, its diagram, and satisfaction.
fn fig1() {
    header("F1", "Fig. 1: the garment dependency and its diagram");
    let td = fig1_td();
    println!("dependency: {}", td_to_string(&td));
    println!("\n{}", diagram_to_ascii(&Diagram::from_td(&td)));
    let mut db = td_core::instance::Instance::new(garment_schema());
    db.insert_values([0, 0, 0]).unwrap();
    db.insert_values([0, 1, 1]).unwrap();
    println!("| database | ⊨ fig1? |");
    println!("|---|---|");
    println!(
        "| {{(SL,dress,10), (SL,brief,36)}} | {} |",
        satisfies(&db, &td)
    );
    db.insert_values([1, 0, 1]).unwrap();
    db.insert_values([2, 1, 0]).unwrap();
    println!("| + (x,dress,36), (y,brief,10) | {} |", satisfies(&db, &td));
}

/// F2 — Fig. 2: bridges.
fn fig2() {
    header("F2", "Fig. 2: bridges for words");
    let alphabet = Alphabet::standard(2);
    let attrs = ReductionAttrs::new(&alphabet).unwrap();
    let word = Word::parse("A0 A1 0", &alphabet).unwrap();
    let mut eq = td_core::eq_instance::EqInstance::new(attrs.schema().clone(), 0);
    let bridge = Bridge::build(&mut eq, &attrs, &word).unwrap();
    bridge.validate(&eq, &attrs).unwrap();
    println!("bridge for `{}`:", word.render(&alphabet));
    print!("{eq}");
    println!("| word length k | rows (2k+1) | validate() |");
    println!("|---|---|---|");
    for k in [1usize, 4, 16, 64, 256] {
        let w = Word::from_raw((0..k).map(|i| (i % 2) as u16)).unwrap();
        let mut eq = td_core::eq_instance::EqInstance::new(attrs.schema().clone(), 0);
        let t0 = Instant::now();
        let b = Bridge::build(&mut eq, &attrs, &w).unwrap();
        let ok = b.validate(&eq, &attrs).is_ok();
        println!("| {k} | {} | {} ({:?}) |", b.row_count(), ok, t0.elapsed());
    }
}

/// F3 — Fig. 3: the dependencies of the running example.
fn fig3() {
    header("F3", "Fig. 3: D1…D4 per equation, and D0");
    let p = td_semigroup::parser::parse("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n")
        .unwrap();
    let system = build_system(&p).unwrap();
    let rule = system.rules[0];
    println!(
        "for rule `{}` (first of {} rules):\n",
        rule.render(&system.attrs),
        system.rules.len()
    );
    for k in 1..=4 {
        let td = system.dep(0, k);
        println!("  {}", td);
    }
    println!("  {}", system.d0);
    println!("\n| dependency | antecedents | existential columns |");
    println!("|---|---|---|");
    for td in system
        .deps
        .iter()
        .take(4)
        .chain(std::iter::once(&system.d0))
    {
        println!(
            "| {} | {} | {} |",
            td.name(),
            td.antecedent_count(),
            td.existential_columns().len()
        );
    }
}

/// RA — part (A): derivations into chase proofs, guided vs unguided.
fn part_a() {
    header(
        "RA",
        "Reduction Theorem (A): derivation ⇒ chase proof of D ⊨ D0",
    );
    println!("| family | k | derivation steps | guided firings | guided time | unguided outcome | unguided firings |");
    println!("|---|---|---|---|---|---|---|");
    for k in [1usize, 2, 4, 8, 16] {
        let p = relabel_chain(k);
        let system = build_system(&p).unwrap();
        let d = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        let t0 = Instant::now();
        let proof = prove_part_a(&system, &p, &d).unwrap();
        let guided_time = t0.elapsed();
        let budget = ChaseBudget {
            max_steps: 200_000,
            max_rows: 200_000,
            max_rounds: 2_000,
        };
        let (outcome, steps, _, _) = prove_unguided(&system, budget).unwrap();
        println!(
            "| relabel | {k} | {} | {} | {:?} | {:?} | {} |",
            d.len(),
            proof.proof.len(),
            guided_time,
            outcome,
            steps
        );
    }
    for k in [1usize, 2, 4] {
        let p = product_chain(k);
        let system = build_system(&p).unwrap();
        let d = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: k + 2,
                max_states: 1_000_000,
            },
        )
        .derivation()
        .unwrap()
        .clone();
        let t0 = Instant::now();
        let proof = prove_part_a(&system, &p, &d).unwrap();
        let guided_time = t0.elapsed();
        let budget = ChaseBudget {
            max_steps: 200_000,
            max_rows: 200_000,
            max_rounds: 2_000,
        };
        let (outcome, steps, _, _) = prove_unguided(&system, budget).unwrap();
        println!(
            "| product | {k} | {} | {} | {:?} | {:?} | {} |",
            d.len(),
            proof.proof.len(),
            guided_time,
            outcome,
            steps
        );
    }
    println!("\n(guided firings: one per relabeling/contraction, four per expansion+merge —");
    println!(" the unguided fair chase reaches the same goal but fires far more triggers.)");
}

/// RB — part (B): countermodels from cancellation semigroups.
fn part_b() {
    header("RB", "Reduction Theorem (B): finite countermodels P ∪ Q");
    println!("| semigroup | |G| | rows (|P|+|Q|) | build | all D hold | D0 fails | Fact 1 | Fact 2 | verify |");
    println!("|---|---|---|---|---|---|---|---|---|");
    // The minimal null(2) example.
    {
        let p = refutable_with_symbols(1);
        let system = build_system(&p).unwrap();
        let g = null_semigroup(2);
        let interp = Interpretation::from_raw([1, 0]);
        let t0 = Instant::now();
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let build = t0.elapsed();
        let t1 = Instant::now();
        let report = verify_counter_model(&system, &model);
        println!(
            "| null(2) | 2 | {} | {:?} | {} | {} | {} | {} | {:?} |",
            model.len(),
            build,
            report.violated_deps.is_empty(),
            report.d0_fails,
            report.fact1,
            report.fact2,
            t1.elapsed()
        );
    }
    for n in [4usize, 8, 16, 32] {
        let (p, g, interp) = nilpotent_countermodel_workload(n);
        let system = build_system(&p).unwrap();
        let t0 = Instant::now();
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let build = t0.elapsed();
        let t1 = Instant::now();
        let report = verify_counter_model(&system, &model);
        println!(
            "| nilpotent({n}) | {n} | {} | {:?} | {} | {} | {} | {} | {:?} |",
            model.len(),
            build,
            report.violated_deps.is_empty(),
            report.d0_fails,
            report.fact1,
            report.fact2,
            t1.elapsed()
        );
    }
}

/// T1 — structure: bounded antecedents, growing attributes.
fn t1_structure() {
    header("T1", "bounded antecedents vs growing attributes (vs Vardi)");
    println!("| symbols n | equations | dependencies | attributes (2n+2) | max antecedents |");
    println!("|---|---|---|---|---|");
    for n_regular in [1usize, 2, 4, 8, 16] {
        let p = refutable_with_symbols(n_regular);
        let system = build_system(&p).unwrap();
        let r = structural_report(&system);
        println!(
            "| {} | {} | {} | {} | {} |",
            r.n_symbols, r.n_rules, r.n_deps, r.n_attributes, r.max_antecedents
        );
    }
}

/// T2 — the decidable fragment.
fn t2_full_vs_embedded() {
    header("T2", "full TDs decide; embedded TDs only semi-decide");
    println!("| premises | goal | procedure | verdict | time |");
    println!("|---|---|---|---|---|");
    let join = vec![join_on_supplier()];
    let fig1 = fig1_td();
    let t0 = Instant::now();
    let full = inference::implies_full(&join, &fig1).unwrap();
    println!(
        "| join-supplier (full) | fig1 | implies_full (decision) | {full} | {:?} |",
        t0.elapsed()
    );
    let t0 = Instant::now();
    let v = inference::implies(&join, &fig1, ChaseBudget::default()).unwrap();
    println!(
        "| join-supplier (full) | fig1 | implies (semi-decision) | {} | {:?} |",
        v.is_implied(),
        t0.elapsed()
    );
    // An embedded premise set where only budgets save us.
    let p = td_semigroup::parser::parse("alphabet A0 0\nzerosat\n").unwrap();
    let system = build_system(&p).unwrap();
    let t0 = Instant::now();
    let v = inference::implies(&system.deps, &system.d0, ChaseBudget::default()).unwrap();
    println!(
        "| reduction D (embedded) | D0 | implies (semi-decision) | {} | {:?} |",
        match v {
            td_core::inference::InferenceVerdict::Implied(_) => "implied".to_owned(),
            td_core::inference::InferenceVerdict::NotImplied(m) =>
                format!("not implied ({} row countermodel)", m.len()),
            td_core::inference::InferenceVerdict::Unknown(_) => "unknown".to_owned(),
        },
        t0.elapsed()
    );
    println!(
        "| reduction D (embedded) | D0 | implies_full | {} | — |",
        inference::implies_full(&system.deps, &system.d0)
            .err()
            .map(|_| "rejected (premises embedded)")
            .unwrap_or("BUG")
    );
}

/// T3 — normalization blowup.
fn t3_normalization() {
    header("T3", "normalization to (2,1) equations");
    println!("| instance | symbols before | symbols after | equations before | after | derivable before=after |");
    println!("|---|---|---|---|---|---|");
    let cases: Vec<(&str, &str)> = vec![
        (
            "paper ABC=DA",
            "alphabet A0 A B C D 0\neq A B C = D A\nzerosat\n",
        ),
        (
            "long tower",
            "alphabet A0 B 0\neq B B B B = A0\neq B B = 0\nzerosat\n",
        ),
        (
            "mixed",
            "alphabet A0 B C 0\neq B C B = A0\neq C C = B\neq B C = 0\nzerosat\n",
        ),
    ];
    for (name, text) in cases {
        let p = td_semigroup::parser::parse(text).unwrap();
        let n = normalize(&p).unwrap();
        let budget = SearchBudget {
            max_word_len: 8,
            max_states: 400_000,
        };
        let before = search_goal_derivation(&p, &budget).derivation().is_some();
        let after = search_goal_derivation(&n.presentation, &budget)
            .derivation()
            .is_some();
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            p.alphabet().len(),
            n.presentation.alphabet().len(),
            p.equations().len(),
            n.presentation.equations().len(),
            before == after
        );
    }
}

/// T5 — word-problem search.
fn t5_word_problem() {
    header("T5", "word-problem search (BFS, quotient, model finder)");
    println!("| instance | BFS states | BFS verdict | quotient classes (len≤3) | model search |");
    println!("|---|---|---|---|---|");
    let cases: Vec<(&str, Presentation)> = vec![
        ("derivable 2-step", {
            td_semigroup::parser::parse("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n")
                .unwrap()
        }),
        ("refutable zero-only", refutable_with_symbols(1)),
        ("relabel_chain(6)", relabel_chain(6)),
        ("product_chain(3)", product_chain(3)),
    ];
    for (name, p) in cases {
        let budget = SearchBudget {
            max_word_len: 6,
            max_states: 500_000,
        };
        let r = search_goal_derivation(&p, &budget);
        let (verdict, states) = match &r {
            td_semigroup::derivation::SearchResult::Found(d) => {
                (format!("derivable ({} steps)", d.len()), "-".to_owned())
            }
            td_semigroup::derivation::SearchResult::ExhaustedWithinBound { states } => {
                ("not reachable ≤ bound".to_owned(), states.to_string())
            }
            td_semigroup::derivation::SearchResult::BudgetExhausted { states } => {
                ("budget".to_owned(), states.to_string())
            }
        };
        let mut q = td_semigroup::quotient::BoundedQuotient::build(&p, 3);
        let classes = q.class_count();
        let ms = td_semigroup::model_search::find_counter_model(
            &p,
            &td_semigroup::model_search::ModelSearchOptions {
                min_size: 2,
                max_size: 3,
                max_nodes: 2_000_000,
            },
        )
        .unwrap();
        let ms_txt = match ms {
            td_semigroup::model_search::ModelSearchResult::Found(g, _) => {
                format!("found |G|={}", g.len())
            }
            td_semigroup::model_search::ModelSearchResult::ExhaustedSizes { nodes } => {
                format!("none ≤ 3 ({nodes} nodes)")
            }
            td_semigroup::model_search::ModelSearchResult::BudgetExhausted { nodes } => {
                format!("budget ({nodes} nodes)")
            }
        };
        println!("| {name} | {states} | {verdict} | {classes} | {ms_txt} |");
    }
    let outcome_probe = ChaseOutcome::Terminated; // referenced for docs
    let _ = outcome_probe;
}
