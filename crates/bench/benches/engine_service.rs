//! Experiment T4 — the service layer's warm-cache payoff: a long-lived
//! [`Engine`] answering a duplicate-heavy request stream, cold versus
//! warm, through the same `decide` path `tdq serve` uses.
//!
//! Shape claim: a cold engine pays one racing solve per isomorphism class
//! (like `solve_batch` with a fresh cache); a warm engine pays only
//! canonicalization + a sharded cache read per request — the steady state
//! of a server that has seen the classes before. The recorded numbers
//! live in `BENCH_batch.json` under `engine/*`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::duplicate_heavy_corpus;
use td_reduction::engine::Engine;
use td_reduction::prelude::*;

/// Cold engine: constructed per iteration, so every distinct class is
/// solved once and every repeat is a within-lifetime cache hit.
fn bench_cold_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/cold_decide");
    group.sample_size(10);
    for copies in [4usize, 12] {
        let corpus = duplicate_heavy_corpus(copies);
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let engine = Engine::new();
                    let mut implied = 0usize;
                    for p in corpus {
                        let d = engine.decide(p).expect("engine decides");
                        implied += usize::from(matches!(d.verdict, BatchVerdict::Implied { .. }));
                    }
                    assert_eq!(engine.stats().solved, 4, "one solve per class");
                    black_box(implied)
                });
            },
        );
    }
    group.finish();
}

/// Warm engine: pre-warmed once, then measured in steady state — every
/// request is canonicalization plus a cache hit, no solving at all.
fn bench_warm_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/warm_decide");
    group.sample_size(10);
    for copies in [4usize, 12] {
        let corpus = duplicate_heavy_corpus(copies);
        let engine = Engine::new();
        for p in &corpus {
            engine.decide(p).expect("warm-up");
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &(corpus, engine),
            |b, (corpus, engine)| {
                b.iter(|| {
                    let solved_before = engine.stats().solved;
                    let mut cached = 0usize;
                    for p in corpus {
                        cached += usize::from(engine.decide(p).expect("warm decide").cached);
                    }
                    assert_eq!(cached, corpus.len(), "everything must hit");
                    assert_eq!(engine.stats().solved, solved_before);
                    black_box(cached)
                });
            },
        );
    }
    group.finish();
}

/// Restart warm-start: one engine solves the corpus and saves a
/// snapshot; each iteration then simulates a process restart — a *fresh*
/// engine loads the snapshot and replays the corpus, which must be
/// all-hits (`solved == 0`). Compare with `engine/cold_decide` (what a
/// restart costs without persistence) and `engine/warm_decide` (the
/// never-restarted upper bound: warm-start adds one snapshot decode +
/// cache rebuild on top of it).
fn bench_snapshot_warm_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/snapshot_warm_decide");
    group.sample_size(10);
    for copies in [4usize, 12] {
        let corpus = duplicate_heavy_corpus(copies);
        let warm = Engine::new();
        for p in &corpus {
            warm.decide(p).expect("warm-up");
        }
        let image = warm.save_snapshot();
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &(corpus, image),
            |b, (corpus, image)| {
                b.iter(|| {
                    let engine = Engine::new();
                    let stats = engine.load_snapshot(image).expect("snapshot loads");
                    assert_eq!(stats.keys_skipped_version, 0);
                    let mut cached = 0usize;
                    for p in corpus {
                        cached += usize::from(engine.decide(p).expect("warm decide").cached);
                    }
                    assert_eq!(cached, corpus.len(), "restart replay is all-hits");
                    assert_eq!(engine.stats().solved, 0, "no solver run after load");
                    black_box(cached)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_engine,
    bench_warm_engine,
    bench_snapshot_warm_engine
);
criterion_main!(benches);
