//! Experiment T4 — chase engine microbenchmarks: trigger search
//! (homomorphism matching) and full chase runs on random workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{garment_schema, join_on_supplier, random_instance};
use td_core::chase::{ChaseBudget, ChaseEngine, ChasePolicy};
use td_core::homomorphism::{match_all, Binding};

fn bench_trigger_search(c: &mut Criterion) {
    let td = join_on_supplier();
    let schema = garment_schema();
    let mut group = c.benchmark_group("chase/match_all");
    for rows in [10usize, 30, 100] {
        let inst = random_instance(&schema, rows, (rows as u32) / 3 + 2, 11);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
            b.iter(|| {
                black_box(match_all(
                    td.antecedents(),
                    black_box(inst),
                    &Binding::new(td.arity()),
                    usize::MAX,
                ))
            });
        });
    }
    group.finish();
}

fn bench_chase_to_fixpoint(c: &mut Criterion) {
    let tds = vec![join_on_supplier()];
    let schema = garment_schema();
    let mut group = c.benchmark_group("chase/fixpoint");
    group.sample_size(10);
    for rows in [5usize, 10, 20] {
        let inst = random_instance(&schema, rows, 4, 3);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
            b.iter(|| {
                let mut engine = ChaseEngine::new(
                    &tds,
                    inst.clone(),
                    ChasePolicy::Restricted,
                    ChaseBudget {
                        max_steps: 100_000,
                        max_rows: 100_000,
                        max_rounds: 1_000,
                    },
                )
                .unwrap();
                let outcome = engine.run(None);
                black_box((outcome, engine.state().len()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trigger_search, bench_chase_to_fixpoint);
criterion_main!(benches);
