//! Experiment T6 — the incremental Σ-session payoff: an ask→add→ask loop
//! through a long-lived session's **resumed** chase, versus answering every
//! ask with a from-scratch [`implies`] run on the current Σ (what a
//! session-less client must do).
//!
//! Shape claim: the goal's frozen tableau is a long pseudo-transitivity
//! chain whose component closure is quadratic in the chain length, plus a
//! disconnected guard row that keeps the verdict `NotImplied` forever. The
//! initial ask pays the full closure on both sides. Every subsequent add
//! appends an isomorphic-but-renamed chain TD, which *invalidates* the
//! refutation verdict but fires nothing new — the session re-chases only
//! the appended TD's pass over the parked fixpoint, while the from-scratch
//! side rebuilds the whole closure under the entire grown Σ. The per-script
//! gap therefore widens with every add; the recorded numbers live in
//! `BENCH_batch.json` under `session/*` (required: ≥2×).
//!
//! Both loops assert the verdicts agree (refuted, identical countermodel
//! row count) — the bench doubles as an end-to-end differential check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_core::chase::ChaseBudget;
use td_core::ids::Var;
use td_core::inference::{implies, InferenceVerdict};
use td_core::schema::Schema;
use td_core::td::{Td, TdRow};
use td_reduction::engine::{Engine, SessionVerdict};

fn schema() -> Schema {
    Schema::new("R", ["C0", "C1"]).unwrap()
}

fn td(name: &str, antecedents: &[[u32; 2]], conclusion: [u32; 2]) -> Td {
    let rows: Vec<TdRow> = antecedents
        .iter()
        .map(|r| TdRow::new(r.iter().map(|&v| Var::new(v))))
        .collect();
    let concl = TdRow::new(conclusion.iter().map(|&v| Var::new(v)));
    Td::new(schema(), rows, concl, name).unwrap()
}

/// Pseudo-transitivity with a per-probe variable relabelling: isomorphic
/// TDs under distinct names, so each add is a real Σ mutation (fresh name,
/// verdict invalidation) that fires nothing on a pt-closed instance.
fn pt_clone(i: u32) -> Td {
    let (a, a2, b, b2) = (10 + i, 20 + i, 10 + i, 20 + i);
    td(&format!("pt{i}"), &[[a, b], [a2, b], [a2, b2]], [a, b2])
}

/// The benchmark goal: a zig-zag chain of `2k+1` rows (component closure
/// under pt = the complete (k+1)×k bipartite product) plus one disconnected
/// guard row; the conclusion pairs the guard with the chain, which no
/// connected-antecedent TD can ever derive — every ask chases the full
/// closure and refutes.
fn chain_goal(k: u32) -> Td {
    let mut rows = Vec::new();
    for i in 0..k {
        rows.push([i, i]);
        rows.push([i + 1, i]);
    }
    rows.push([k, k]);
    let guard = [1000, 1000];
    rows.push(guard);
    td("goal", &rows, [guard[0], 0])
}

const CHAIN_K: u32 = 8;
const PROBES: u32 = 8;

/// The unique closure size of the goal tableau under any pt clone —
/// computed once by the scratch oracle; both bench loops pin their
/// countermodels to it (full TDs: the fixpoint is unique).
fn closure_rows(goal: &Td) -> usize {
    match implies(&[pt_clone(0)], goal, ChaseBudget::default()).unwrap() {
        InferenceVerdict::NotImplied(inst) => inst.len(),
        v => panic!("the guarded goal must refute, got {v:?}"),
    }
}

fn expect_refuted_rows(rows: usize, expected: usize, side: &str, step: u32) {
    assert_eq!(
        rows, expected,
        "{side} countermodel drifted at add #{step}: the closure is unique"
    );
}

/// The session side: one `open`, one initial ask, then PROBES rounds of
/// `add_dep` + re-ask, each re-ask resuming the parked fixpoint.
fn bench_session_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/incremental_ask");
    group.sample_size(10);
    let goal = chain_goal(CHAIN_K);
    let closure = closure_rows(&goal);
    group.bench_with_input(BenchmarkId::from_parameter(PROBES), &goal, |b, goal| {
        let engine = Engine::new();
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            let sid = format!("bench{run}");
            engine.session_open(&sid).unwrap();
            engine.session_add_deps(&sid, &[pt_clone(0)]).unwrap();
            let (v, _) = engine.session_ask(&sid, goal).unwrap();
            let SessionVerdict::NotImplied { model_rows } = v else {
                panic!("the guarded goal must refute, got {v:?}");
            };
            expect_refuted_rows(model_rows, closure, "session", 0);
            for i in 1..=PROBES {
                engine.session_add_deps(&sid, &[pt_clone(i)]).unwrap();
                let (v, cached) = engine.session_ask(&sid, goal).unwrap();
                assert!(!cached, "the add must invalidate the verdict");
                let SessionVerdict::NotImplied { model_rows } = v else {
                    panic!("still refuted after add #{i}, got {v:?}");
                };
                expect_refuted_rows(model_rows, closure, "session", i);
            }
            engine.session_close(&sid).unwrap();
            black_box(run)
        });
    });
    group.finish();
}

/// The from-scratch side: the identical ask→add→ask script, but every ask
/// is a fresh [`implies`] chase over the current Σ — no state survives.
fn bench_from_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/from_scratch_ask");
    group.sample_size(10);
    let goal = chain_goal(CHAIN_K);
    let closure = closure_rows(&goal);
    group.bench_with_input(BenchmarkId::from_parameter(PROBES), &goal, |b, goal| {
        b.iter(|| {
            let mut sigma = vec![pt_clone(0)];
            let v = implies(&sigma, goal, ChaseBudget::default()).unwrap();
            let InferenceVerdict::NotImplied(inst) = v else {
                panic!("the guarded goal must refute, got {v:?}");
            };
            expect_refuted_rows(inst.len(), closure, "scratch", 0);
            for i in 1..=PROBES {
                sigma.push(pt_clone(i));
                let v = implies(&sigma, goal, ChaseBudget::default()).unwrap();
                let InferenceVerdict::NotImplied(inst) = v else {
                    panic!("still refuted after add #{i}, got {v:?}");
                };
                expect_refuted_rows(inst.len(), closure, "scratch", i);
            }
            black_box(sigma.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_session_incremental, bench_from_scratch);
criterion_main!(benches);
