//! Experiment F3 — the Fig. 3 construction: building the dependency set
//! `D ∪ {D₀}` as the alphabet (and with it the equation count) grows.
//!
//! Shape claim: |attributes| = 2n+2 and |D| = 4·|equations| — construction
//! time is linear in `n · |equations|` with antecedent counts constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::refutable_with_symbols;
use td_reduction::deps::build_system;

fn bench_build_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/build_system");
    for n_regular in [2usize, 8, 32] {
        // Zero-saturated: 2(n+1)+... equations scale with n too.
        let p = refutable_with_symbols(n_regular);
        group.bench_with_input(BenchmarkId::from_parameter(n_regular), &p, |b, p| {
            b.iter(|| black_box(build_system(black_box(p)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_system);
criterion_main!(benches);
