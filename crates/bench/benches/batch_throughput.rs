//! Experiment T3 — batch decision throughput: canonical-key deduplication
//! plus the worker pool versus one-at-a-time solving.
//!
//! Shape claim: on a duplicate-heavy corpus (every instance repeated under
//! renamed symbols and rotated equations), `solve_batch` answers each
//! isomorphism class once, so its cost is ~`unique / total` of the naive
//! loop's before parallelism even starts. The acceptance bar for the
//! recorded baseline (`BENCH_batch.json`) is ≥5× on the 48-instance
//! corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::duplicate_heavy_corpus;
use td_reduction::prelude::*;

/// One-at-a-time baseline: the racing solver on every instance, no
/// deduplication, no cache.
fn bench_one_at_a_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/one_at_a_time");
    group.sample_size(10);
    for copies in [4usize, 12] {
        let corpus = duplicate_heavy_corpus(copies);
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let mut implied = 0usize;
                    for p in corpus {
                        let run = solve(p, &Budgets::default()).expect("pipeline runs");
                        implied += usize::from(run.outcome.is_implied());
                    }
                    black_box(implied)
                });
            },
        );
    }
    group.finish();
}

/// The batch pipeline with a fresh cache per iteration (so the measured
/// win is dedup + the worker pool, not cross-iteration caching).
fn bench_solve_batch(c: &mut Criterion) {
    for jobs in [1usize, 4] {
        let mut group = c.benchmark_group(format!("batch/solve_batch_j{jobs}"));
        group.sample_size(10);
        for copies in [4usize, 12] {
            let corpus = duplicate_heavy_corpus(copies);
            group.bench_with_input(
                BenchmarkId::from_parameter(corpus.len()),
                &corpus,
                |b, corpus| {
                    b.iter(|| {
                        let cache = DecisionCache::default();
                        let run = solve_batch(corpus, &Budgets::default(), jobs, &cache)
                            .expect("batch runs");
                        assert_eq!(run.stats.unique, 4, "dedup must collapse the corpus");
                        black_box(run.stats)
                    });
                },
            );
        }
        group.finish();
    }
}

/// A pre-warmed cache: the steady-state cost of a duplicate-heavy stream,
/// i.e. canonicalization alone.
fn bench_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/warm_cache_j4");
    group.sample_size(10);
    for copies in [4usize, 12] {
        let corpus = duplicate_heavy_corpus(copies);
        let cache = DecisionCache::default();
        solve_batch(&corpus, &Budgets::default(), 4, &cache).expect("warm-up");
        group.bench_with_input(
            BenchmarkId::from_parameter(corpus.len()),
            &(corpus, cache),
            |b, (corpus, cache)| {
                b.iter(|| {
                    let run =
                        solve_batch(corpus, &Budgets::default(), 4, cache).expect("batch runs");
                    assert_eq!(run.stats.solved, 0, "everything must hit the cache");
                    black_box(run.stats)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_one_at_a_time,
    bench_solve_batch,
    bench_warm_cache
);
criterion_main!(benches);
