//! Experiment RA — part (A) of the Reduction Theorem: turning derivations
//! into chase proofs, guided (linear replay) versus unguided (fair chase
//! search).
//!
//! Shape claims: the guided chase is linear in the derivation length (one
//! firing per relabeling step, four per expansion+contraction pair); the
//! unguided fair chase pays an exploration overhead that grows much faster,
//! which is why part (A) matters as a *constructive* argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{product_chain, relabel_chain};
use td_core::chase::ChaseBudget;
use td_core::homomorphism::MatchStrategy;
use td_reduction::deps::build_system;
use td_reduction::part_a::{prove_part_a, prove_unguided_with};
use td_semigroup::derivation::{search_goal_derivation, SearchBudget};

fn bench_guided(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_a/guided/relabel_chain");
    for k in [4usize, 16, 64] {
        let p = relabel_chain(k);
        let system = build_system(&p).unwrap();
        let derivation = search_goal_derivation(&p, &SearchBudget::default())
            .derivation()
            .unwrap()
            .clone();
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            b.iter(|| black_box(prove_part_a(&system, &p, &derivation).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("part_a/guided/product_chain");
    for k in [2usize, 4, 8] {
        let p = product_chain(k);
        let system = build_system(&p).unwrap();
        let derivation = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: k + 2,
                max_states: 1_000_000,
            },
        )
        .derivation()
        .unwrap()
        .clone();
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            b.iter(|| black_box(prove_part_a(&system, &p, &derivation).unwrap()));
        });
    }
    group.finish();
}

/// The unguided fair chase, naive versus indexed matching. The `k = 16`
/// relabel chain is the "large fixture" whose recorded speedup lives in
/// `BENCH_chase.json`.
fn bench_unguided(c: &mut Criterion) {
    for (name, strategy) in [
        ("naive", MatchStrategy::Naive),
        ("indexed", MatchStrategy::Indexed),
    ] {
        let mut group = c.benchmark_group(format!("part_a/unguided/relabel_chain/{name}"));
        group.sample_size(10);
        for k in [4usize, 8, 16] {
            let p = relabel_chain(k);
            let system = build_system(&p).unwrap();
            let budget = ChaseBudget {
                max_steps: 100_000,
                max_rows: 100_000,
                max_rounds: 1_000,
            };
            group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
                b.iter(|| {
                    let (outcome, ..) = prove_unguided_with(&system, budget, strategy).unwrap();
                    black_box(outcome)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_guided, bench_unguided);
criterion_main!(benches);
