//! Experiment RB — part (B) of the Reduction Theorem: building the finite
//! countermodel `P ∪ Q` from a cancellation semigroup, and independently
//! verifying it (all of `D` hold, `D₀` fails, Facts 1–2).
//!
//! Shape claims: construction is near-linear in the model size (Θ(n) rows
//! for the nilpotent workload); verification is polynomial — dominated by
//! homomorphism search for the 5-antecedent dependencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::nilpotent_countermodel_workload;
use td_reduction::deps::build_system;
use td_reduction::part_b::build_counter_model;
use td_reduction::verify::verify_counter_model;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_b/build");
    for n in [4usize, 8, 16] {
        let (p, g, interp) = nilpotent_countermodel_workload(n);
        let system = build_system(&p).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(build_counter_model(&system, &p, &g, &interp).unwrap()));
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_b/verify");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let (p, g, interp) = nilpotent_countermodel_workload(n);
        let system = build_system(&p).unwrap();
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| {
                let report = verify_counter_model(&system, &model);
                assert!(report.ok());
                black_box(report)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_verify);
criterion_main!(benches);
