//! Experiment T5 — the axiom-driven fast path: what the microsecond
//! prescreen tier saves on an easy-heavy request mix, through the same
//! `decide` path `tdq serve` uses.
//!
//! Shape claim: on [`easy_heavy_corpus`] (48 instances, 32 of them
//! fast-path eligible by construction) a cold engine with the fast path on
//! settles every eligible instance before either search thread spawns —
//! zero chase/model-search spend, `stats.fastpath_hits` counting each one
//! — while the `FastPath::Off` baseline pays the full racing solve for all
//! 48. The per-query floor is pinned by `engine/fastpath_single`: one
//! fast-settled decide, end to end (parse-free: canonicalize → prescreen),
//! must stay in the microsecond regime. Recorded numbers live in
//! `BENCH_batch.json` under `engine/fastpath_*`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{easy_heavy_corpus, EASY_HEAVY_ELIGIBLE};
use td_reduction::deps::build_system;
use td_reduction::engine::{Engine, EngineConfig};
use td_reduction::fastpath::{prescreen, FastBudget};
use td_reduction::prelude::*;
use td_semigroup::normalize::normalize;

/// A cold engine with the fast path forced to `mode`.
fn engine_with(mode: FastPath) -> Engine {
    Engine::with_config(EngineConfig {
        opts: SolveOptions {
            fastpath: mode,
            ..SolveOptions::default()
        },
        ..EngineConfig::default()
    })
}

/// Fast path on (the default tier order): every eligible instance must be
/// a fast-path hit with zero search spend; the hard tail still solves.
fn bench_fastpath_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/fastpath_cold_decide");
    group.sample_size(10);
    let corpus = easy_heavy_corpus();
    group.bench_with_input(
        BenchmarkId::from_parameter("easy_heavy_48"),
        &corpus,
        |b, corpus| {
            b.iter(|| {
                let engine = engine_with(FastPath::Auto);
                for (i, p) in corpus.iter().enumerate() {
                    let d = engine.decide(p).expect("engine decides");
                    if i < EASY_HEAVY_ELIGIBLE {
                        assert!(
                            d.spend.fastpath_checks > 0
                                && d.spend.derivation_states == 0
                                && d.spend.model_nodes == 0,
                            "instance {i} is eligible: the prescreen must settle it \
                             with zero search spend, got {:?}",
                            d.spend
                        );
                    }
                }
                let stats = engine.stats();
                assert_eq!(stats.solved, corpus.len() as u64, "distinct keys");
                assert!(
                    stats.fastpath_hits >= EASY_HEAVY_ELIGIBLE as u64,
                    "every eligible instance is a fast-path hit, got {}",
                    stats.fastpath_hits
                );
                black_box(stats.fastpath_hits)
            });
        },
    );
    group.finish();
}

/// Baseline: the same corpus with the fast path off — every instance pays
/// the full racing portfolio (the cost the prescreen tier removes).
fn bench_cold_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/cold_decide");
    group.sample_size(10);
    let corpus = easy_heavy_corpus();
    group.bench_with_input(
        BenchmarkId::from_parameter("easy_heavy_48"),
        &corpus,
        |b, corpus| {
            b.iter(|| {
                let engine = engine_with(FastPath::Off);
                for p in corpus {
                    black_box(engine.decide(p).expect("engine decides"));
                }
                let stats = engine.stats();
                assert_eq!(stats.solved, corpus.len() as u64, "distinct keys");
                assert_eq!(stats.fastpath_hits, 0, "the baseline never prescreens");
                black_box(stats.solved)
            });
        },
    );
    group.finish();
}

/// The microsecond-tier claim (`< 100 µs` per settled query, recorded in
/// BENCH_batch.json): one [`prescreen`] call on a prebuilt reduced system.
/// Both settling stages are pinned — the subsumption settle (`A₀ = 0`
/// alias) and the refutation-probe settle (zero-only presentation). This
/// is the tier's own cost, the price every stage-0 `decide` pays before
/// the cache answer or the portfolio spawn; the end-to-end singles below
/// add canonicalization on top.
fn bench_prescreen_settle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath/prescreen_settle");
    let corpus = easy_heavy_corpus();
    for (label, idx, implied) in [
        ("probe_refuted", 0usize, false),
        ("subsumed_implied", 24, true),
    ] {
        let normalized = normalize(&corpus[idx].zero_saturated()).expect("normalizes");
        let system = build_system(&normalized.presentation).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(label), &system, |b, system| {
            b.iter(|| {
                let pre = prescreen(system, &FastBudget::default()).expect("prescreens");
                let verdict = pre.verdict.expect("must fast-settle");
                assert_eq!(verdict.is_implied(), implied);
                black_box(verdict)
            });
        });
    }
    group.finish();
}

/// One fast-settled query on a fresh engine, end to end (parse-free:
/// canonicalize → reduce → prescreen). Context for the prescreen-tier
/// numbers above: on easy singles the canonicalization pass, not the
/// prescreen, dominates this figure.
fn bench_fastpath_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/fastpath_single");
    let corpus = easy_heavy_corpus();
    for (label, idx) in [("probe_refuted", 0usize), ("subsumed_implied", 24)] {
        let p = corpus[idx].clone();
        group.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| {
                let engine = engine_with(FastPath::Auto);
                let d = engine.decide(p).expect("engine decides");
                assert!(
                    d.spend.fastpath_checks > 0 && d.spend.model_nodes == 0,
                    "must fast-settle: {:?}",
                    d.spend
                );
                black_box(d.verdict)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fastpath_cold,
    bench_cold_baseline,
    bench_prescreen_settle,
    bench_fastpath_single
);
criterion_main!(benches);
