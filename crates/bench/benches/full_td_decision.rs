//! Experiment T2 — the decidable fragment: `implies_full` (terminating
//! chase decision for full TDs) versus the general semi-decision procedure.
//!
//! Shape claim: full-TD inference always terminates; its cost grows with
//! the frozen tableau's active domain but stays total, while embedded
//! inference needs budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{fig1_td, full_td_family, join_on_supplier};
use td_core::chase::ChaseBudget;
use td_core::inference::{implies, implies_full};

fn bench_full_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_td/implies_full");
    for arity in [2usize, 3, 4] {
        let (schema, family) = full_td_family(arity);
        // Goal: the last family member (implied: it is in the set).
        let goal = family.last().unwrap().clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(arity),
            &(schema, family, goal),
            |b, (_, family, goal)| {
                b.iter(|| black_box(implies_full(family, goal).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_embedded_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_td/vs_embedded");
    let join = vec![join_on_supplier()];
    let fig1 = fig1_td();
    group.bench_function("full_premises_decide_fig1", |b| {
        b.iter(|| black_box(implies_full(&join, &fig1).unwrap()));
    });
    group.bench_function("general_procedure_same_query", |b| {
        b.iter(|| black_box(implies(&join, &fig1, ChaseBudget::default()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_full_decision, bench_embedded_vs_full);
criterion_main!(benches);
