//! Experiment T2 — the decidable fragment: `implies_full` (terminating
//! chase decision for full TDs) versus the general semi-decision procedure.
//!
//! Shape claim: full-TD inference always terminates; its cost grows with
//! the frozen tableau's active domain but stays total, while embedded
//! inference needs budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{fig1_td, full_td_family, join_on_supplier, two_star_tableau_goal};
use td_core::budget::Parallelism;
use td_core::chase::ChaseBudget;
use td_core::homomorphism::MatchStrategy;
use td_core::inference::{implies, implies_full, implies_with, implies_with_strategy};

const STRATEGIES: [(&str, MatchStrategy); 2] = [
    ("naive", MatchStrategy::Naive),
    ("indexed", MatchStrategy::Indexed),
];

/// `implies_full`'s terminating chase on an in-family goal (settles fast —
/// the chase reaches the goal within a round), naive versus indexed.
fn bench_full_decision(c: &mut Criterion) {
    for (name, strategy) in STRATEGIES {
        let mut group = c.benchmark_group(format!("full_td/implies_full/{name}"));
        group.sample_size(10);
        for arity in [2usize, 3, 4, 5] {
            let (schema, family) = full_td_family(arity);
            // Goal: the last family member (implied: it is in the set).
            let goal = family.last().unwrap().clone();
            group.bench_with_input(
                BenchmarkId::from_parameter(arity),
                &(schema, family, goal),
                |b, (_, family, goal)| {
                    b.iter(|| {
                        black_box(
                            implies_with_strategy(family, goal, ChaseBudget::unlimited(), strategy)
                                .unwrap(),
                        )
                    });
                },
            );
        }
        group.finish();
    }
}

/// The expensive direction: a *negative* full-TD decision, which must
/// materialize the frozen tableau's complete product closure before
/// answering. `k = 24` (a 48-row tableau closing to ~1.2k rows) is the
/// "large fixture" whose recorded speedup lives in `BENCH_chase.json`.
fn bench_two_star_decision(c: &mut Criterion) {
    for (name, strategy) in STRATEGIES {
        let mut group = c.benchmark_group(format!("full_td/decide_two_star/{name}"));
        group.sample_size(10);
        for k in [8usize, 16, 24] {
            let (schema, family) = full_td_family(3);
            let goal = two_star_tableau_goal(&schema, k);
            group.bench_with_input(
                BenchmarkId::from_parameter(k),
                &(family, goal),
                |b, (family, goal)| {
                    b.iter(|| {
                        let v =
                            implies_with_strategy(family, goal, ChaseBudget::unlimited(), strategy)
                                .unwrap();
                        assert!(v.is_not_implied());
                        black_box(v)
                    });
                },
            );
        }
        group.finish();
    }
}

/// The same negative decision with parallel delta-trigger discovery:
/// `Parallelism::Threads(4)` fans the semi-naive scan across a scoped
/// worker team and merges candidates back in sequential order (the
/// verdict is asserted identical). Shape claim: on a multi-core machine
/// the `k = 24` closure amortizes the fan-out and approaches the worker
/// count; on one core it can only add merge overhead — the recorded
/// numbers in `BENCH_chase.json` note which machine they came from.
fn bench_two_star_parallel(c: &mut Criterion) {
    for (name, parallelism) in [
        ("threads4", Parallelism::Threads(4)),
        ("off", Parallelism::Off),
    ] {
        let mut group = c.benchmark_group(format!("full_td/decide_two_star_par/{name}"));
        group.sample_size(10);
        for k in [8usize, 16, 24] {
            let (schema, family) = full_td_family(3);
            let goal = two_star_tableau_goal(&schema, k);
            group.bench_with_input(
                BenchmarkId::from_parameter(k),
                &(family, goal),
                |b, (family, goal)| {
                    b.iter(|| {
                        let v = implies_with(
                            family,
                            goal,
                            ChaseBudget::unlimited(),
                            MatchStrategy::Indexed,
                            parallelism,
                        )
                        .unwrap();
                        assert!(v.is_not_implied());
                        black_box(v)
                    });
                },
            );
        }
        group.finish();
    }
}

fn bench_embedded_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_td/vs_embedded");
    let join = vec![join_on_supplier()];
    let fig1 = fig1_td();
    group.bench_function("full_premises_decide_fig1", |b| {
        b.iter(|| black_box(implies_full(&join, &fig1).unwrap()));
    });
    group.bench_function("general_procedure_same_query", |b| {
        b.iter(|| black_box(implies(&join, &fig1, ChaseBudget::default()).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_decision,
    bench_two_star_decision,
    bench_two_star_parallel,
    bench_embedded_vs_full
);
criterion_main!(benches);
