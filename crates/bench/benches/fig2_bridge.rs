//! Experiment F2 — bridges (Fig. 2): building and validating the row
//! structure representing a word, as the word grows.
//!
//! Shape claim: a bridge for a length-k word occupies 2k+1 rows and both
//! construction and validation are linear in k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_core::eq_instance::EqInstance;
use td_reduction::attrs::ReductionAttrs;
use td_reduction::bridge::Bridge;
use td_semigroup::alphabet::Alphabet;
use td_semigroup::word::Word;

fn bench_bridges(c: &mut Criterion) {
    let alphabet = Alphabet::standard(2);
    let attrs = ReductionAttrs::new(&alphabet).unwrap();

    let mut group = c.benchmark_group("fig2/build");
    for k in [4usize, 16, 64] {
        let word = Word::from_raw((0..k).map(|i| (i % 2) as u16)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &word, |b, word| {
            b.iter(|| {
                let mut eq = EqInstance::new(attrs.schema().clone(), 0);
                black_box(Bridge::build(&mut eq, &attrs, word).unwrap())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig2/validate");
    for k in [4usize, 16, 64] {
        let word = Word::from_raw((0..k).map(|i| (i % 2) as u16)).unwrap();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let bridge = Bridge::build(&mut eq, &attrs, &word).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &(), |b, _| {
            b.iter(|| black_box(bridge.validate(&eq, &attrs).is_ok()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bridges);
criterion_main!(benches);
