//! Experiment T5 — the indexed homomorphism planner against the naive
//! nested-scan oracle, on the chase's two hot paths: raw trigger
//! enumeration (`match_all`) and restricted-chase fixpoints.
//!
//! Shape claims: trigger enumeration over an `N`-row instance is
//! `O(N^rows)` for the naive matcher but near-output-linear for the
//! indexed planner on connected patterns; the chase fixpoint compounds the
//! gap because every round re-enters the matcher. The recorded numbers
//! live in `BENCH_chase.json` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{garment_schema, join_on_supplier, random_instance};
use td_core::chase::{ChaseBudget, ChaseEngine, ChasePolicy};
use td_core::homomorphism::{match_all_with, Binding, MatchStrategy};

const STRATEGIES: [(&str, MatchStrategy); 2] = [
    ("naive", MatchStrategy::Naive),
    ("indexed", MatchStrategy::Indexed),
];

fn bench_match_all(c: &mut Criterion) {
    let td = join_on_supplier();
    let schema = garment_schema();
    for (name, strategy) in STRATEGIES {
        let mut group = c.benchmark_group(format!("indexed_vs_naive/match_all/{name}"));
        for rows in [100usize, 300, 1000] {
            let inst = random_instance(&schema, rows, (rows as u32) / 3 + 2, 11);
            group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
                b.iter(|| {
                    black_box(match_all_with(
                        strategy,
                        td.antecedents(),
                        black_box(inst),
                        &Binding::new(td.arity()),
                        usize::MAX,
                    ))
                });
            });
        }
        group.finish();
    }
}

fn bench_chase_fixpoint(c: &mut Criterion) {
    let tds = vec![join_on_supplier()];
    let schema = garment_schema();
    for (name, strategy) in STRATEGIES {
        let mut group = c.benchmark_group(format!("indexed_vs_naive/chase_fixpoint/{name}"));
        group.sample_size(10);
        for rows in [10usize, 20, 40] {
            let inst = random_instance(&schema, rows, 4, 3);
            group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
                b.iter(|| {
                    let mut engine = ChaseEngine::new(
                        &tds,
                        inst.clone(),
                        ChasePolicy::Restricted,
                        ChaseBudget {
                            max_steps: 1_000_000,
                            max_rows: 1_000_000,
                            max_rounds: 10_000,
                        },
                    )
                    .unwrap()
                    .with_strategy(strategy);
                    let outcome = engine.run(None);
                    black_box((outcome, engine.state().len()))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_match_all, bench_chase_fixpoint);
criterion_main!(benches);
