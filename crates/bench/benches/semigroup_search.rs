//! Experiment T5 — the word-problem substrate: BFS derivation search,
//! bounded congruence closure, and the finite-model finder.
//!
//! Shape claims: BFS cost grows with the word-length window and equation
//! count; the bounded quotient is geometric in its length bound; the model
//! finder is exponential in the semigroup order (the reason analytic
//! families matter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{product_chain, refutable_with_symbols, relabel_chain};
use td_semigroup::derivation::{search_goal_derivation, SearchBudget};
use td_semigroup::model_search::{find_counter_model, ModelSearchOptions, ModelSearchResult};
use td_semigroup::quotient::BoundedQuotient;

fn bench_derivation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("semigroup/bfs/relabel_chain");
    for k in [4usize, 16, 64] {
        let p = relabel_chain(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| {
                let r = search_goal_derivation(p, &SearchBudget::default());
                black_box(r.derivation().is_some())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("semigroup/bfs/product_chain");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let p = product_chain(k);
        let budget = SearchBudget {
            max_word_len: k + 2,
            max_states: 1_000_000,
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| {
                let r = search_goal_derivation(p, &budget);
                black_box(r.derivation().is_some())
            });
        });
    }
    group.finish();
}

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("semigroup/quotient");
    let p = relabel_chain(3);
    for len in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &p, |b, p| {
            b.iter(|| {
                let mut q = BoundedQuotient::build(p, len);
                black_box(q.goal_identified(p))
            });
        });
    }
    group.finish();
}

fn bench_model_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("semigroup/model_search");
    group.sample_size(10);
    for max_size in [2usize, 3, 4] {
        let p = refutable_with_symbols(1);
        let opts = ModelSearchOptions {
            // Force the search to work through the whole size, skipping the
            // analytic shortcut: demand a model of exactly this order.
            min_size: max_size,
            max_size,
            max_nodes: 50_000_000,
        };
        group.bench_with_input(BenchmarkId::from_parameter(max_size), &(), |b, _| {
            b.iter(|| {
                let r = find_counter_model(&p, &opts).unwrap();
                black_box(matches!(r, ModelSearchResult::Found(..)))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derivation_search,
    bench_quotient,
    bench_model_search
);
criterion_main!(benches);
