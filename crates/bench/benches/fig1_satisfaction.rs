//! Experiment F1 — Fig. 1's dependency as a workload: satisfaction
//! checking of the garment dependency against growing databases.
//!
//! Shape claim: homomorphism search for the 2-antecedent template is
//! quadratic-ish in the row count (candidate pairs sharing a supplier),
//! and the violation check stops at the first violation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{fig1_td, garment_schema, random_instance};
use td_core::satisfaction::{find_violation, satisfies};

fn bench_satisfaction(c: &mut Criterion) {
    let td = fig1_td();
    let schema = garment_schema();
    let mut group = c.benchmark_group("fig1/satisfies");
    for rows in [10usize, 30, 100] {
        // Dense value space: some violations exist with high probability.
        let inst = random_instance(&schema, rows, (rows as u32) / 2 + 2, 42);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
            b.iter(|| black_box(satisfies(black_box(inst), &td)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig1/find_violation");
    for rows in [10usize, 30, 100] {
        let inst = random_instance(&schema, rows, (rows as u32) / 2 + 2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &inst, |b, inst| {
            b.iter(|| black_box(find_violation(black_box(inst), &td)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_satisfaction);
criterion_main!(benches);
