//! Quickstart: the paper's running garment example.
//!
//! Builds the Fig. 1 dependency, renders its diagram, checks satisfaction
//! against a small database, and runs the chase-based inference API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use template_deps::prelude::*;

fn main() {
    // "Suppose the relation R represents the availability of garments of
    // various styles and sizes from various suppliers."
    let schema = Schema::new("R", ["SUPPLIER", "STYLE", "SIZE"]).unwrap();
    println!("schema: {schema}\n");

    // Fig. 1: R(a,b,c) & R(a,b',c') => (for some a*) R(a*,b,c').
    let fig1 = TdBuilder::new(schema.clone())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a", "b'", "c'"])
        .unwrap()
        .conclusion(["*", "b", "c'"])
        .unwrap()
        .build("fig1")
        .unwrap();
    println!("dependency     : {fig1}");
    println!(
        "classification : {} ({} antecedents)",
        if fig1.is_full() { "full" } else { "embedded" },
        fig1.antecedent_count()
    );

    // The paper draws this as a 3-node diagram (Figure 1).
    let diagram = Diagram::from_td(&fig1);
    println!("\n{}", td_core::render::diagram_to_ascii(&diagram));
    println!(
        "Graphviz:\n{}",
        td_core::render::diagram_to_dot(&diagram, "fig1")
    );

    // A database: one supplier with a dress in 10 and a brief in 36.
    let mut db = Instance::new(schema.clone());
    let (sl, dress, brief, s10, s36) = (0, 0, 1, 0, 1);
    db.insert_values([sl, dress, s10]).unwrap();
    db.insert_values([sl, brief, s36]).unwrap();
    println!("{db}");
    println!("db ⊨ fig1? {}", satisfies(&db, &fig1));

    // Repair it: fig1 (quantified over *both* orders of the match) demands
    // a dress in 36 and a brief in 10, from any suppliers.
    db.insert_values([7, dress, s36]).unwrap();
    db.insert_values([8, brief, s10]).unwrap();
    println!("after repairs: db ⊨ fig1? {}\n", satisfies(&db, &fig1));

    // Inference: the *full* join dependency implies fig1, not conversely.
    let join = TdBuilder::new(schema)
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a", "b'", "c'"])
        .unwrap()
        .conclusion(["a", "b", "c'"])
        .unwrap()
        .build("join-supplier")
        .unwrap();
    println!("stronger dependency: {join}");

    match implies(std::slice::from_ref(&join), &fig1, ChaseBudget::default()).unwrap() {
        InferenceVerdict::Implied(proof) => {
            println!(
                "join-supplier ⊨ fig1 — chase proof with {} step(s)",
                proof.len()
            );
        }
        other => println!("unexpected verdict: {other:?}"),
    }
    match implies(std::slice::from_ref(&fig1), &join, ChaseBudget::default()).unwrap() {
        InferenceVerdict::NotImplied(model) => {
            println!(
                "fig1 ⊭ join-supplier — finite countermodel with {} rows:",
                model.len()
            );
            println!("{model}");
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // Full dependencies enjoy a *decision* procedure (terminating chase).
    let decided = implies_full(std::slice::from_ref(&join), &fig1).unwrap();
    println!("implies_full(join-supplier ⊨ fig1) = {decided}");
}
