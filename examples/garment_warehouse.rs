//! A realistic constraint-management scenario on a wider schema.
//!
//! A warehouse tracks (SUPPLIER, REGION, STYLE, SIZE). The integrity team
//! maintains template dependencies and needs the paper's motivating
//! operations: checking data, minimizing the constraint set (redundancy),
//! comparing constraint sets for equivalence, and understanding which
//! fragments are decidable.
//!
//! ```text
//! cargo run --example garment_warehouse
//! ```

use template_deps::prelude::*;
use template_deps::td_core::eid::{eid_satisfies, implies_eid, Eid, EidVerdict};

fn schema() -> Schema {
    Schema::new("R", ["SUPPLIER", "REGION", "STYLE", "SIZE"]).unwrap()
}

fn main() {
    let schema = schema();
    println!("schema: {schema}\n");

    // Constraint 1 (full): within one supplier and region, styles and
    // sizes are freely combinable.
    let cross_in_region = TdBuilder::new(schema.clone())
        .antecedent(["s", "r", "st", "sz"])
        .unwrap()
        .antecedent(["s", "r", "st'", "sz'"])
        .unwrap()
        .conclusion(["s", "r", "st", "sz'"])
        .unwrap()
        .build("cross-in-region")
        .unwrap();

    // Constraint 2 (embedded): a style a supplier sells anywhere is sold in
    // *some* region in every size the supplier carries.
    let style_travels = TdBuilder::new(schema.clone())
        .antecedent(["s", "r", "st", "sz"])
        .unwrap()
        .antecedent(["s", "r'", "st'", "sz'"])
        .unwrap()
        .conclusion(["s", "*", "st", "sz'"])
        .unwrap()
        .build("style-travels")
        .unwrap();

    // Constraint 3 (embedded, weaker): someone supplies each combination.
    let someone_supplies = TdBuilder::new(schema.clone())
        .antecedent(["s", "r", "st", "sz"])
        .unwrap()
        .antecedent(["s", "r'", "st'", "sz'"])
        .unwrap()
        .conclusion(["*", "*", "st", "sz'"])
        .unwrap()
        .build("someone-supplies")
        .unwrap();

    let constraints = vec![cross_in_region, style_travels, someone_supplies];
    for td in &constraints {
        println!("{td}");
    }

    // ------------------------------------------------------------
    // Minimize the constraint set.
    // ------------------------------------------------------------
    println!("\nminimization:");
    let budget = ChaseBudget::default();
    let mut essential = Vec::new();
    for (i, td) in constraints.iter().enumerate() {
        match td_core::inference::redundant(&constraints, i, budget).unwrap() {
            InferenceVerdict::Implied(_) => {
                println!("  drop {:20} (implied by the others)", td.name());
            }
            InferenceVerdict::NotImplied(m) => {
                println!(
                    "  keep {:20} (countermodel with {} rows shows independence)",
                    td.name(),
                    m.len()
                );
                essential.push(td.clone());
            }
            InferenceVerdict::Unknown(_) => {
                println!("  keep {:20} (undetermined within budget)", td.name());
                essential.push(td.clone());
            }
        }
    }

    // The minimized set is equivalent to the original.
    let (fwd, bwd) = td_core::inference::equivalent(&essential, &constraints, budget).unwrap();
    println!(
        "  minimized set equivalent to original: {}",
        fwd.iter().all(InferenceVerdict::is_implied)
            && bwd.iter().all(InferenceVerdict::is_implied)
    );

    // ------------------------------------------------------------
    // Data checking.
    // ------------------------------------------------------------
    println!("\ndata check:");
    let mut db = Instance::new(schema.clone());
    // Supplier 0 in region 0: style 0 in sizes 0 and 1; style 1 in size 0.
    db.insert_values([0, 0, 0, 0]).unwrap();
    db.insert_values([0, 0, 0, 1]).unwrap();
    db.insert_values([0, 0, 1, 0]).unwrap();
    for td in &constraints {
        let ok = satisfies(&db, td);
        println!(
            "  {:20} {}",
            td.name(),
            if ok { "holds" } else { "VIOLATED" }
        );
        if let Some(v) = td_core::satisfaction::find_violation(&db, td) {
            for line in td_core::render::render_violation(td, &v).lines().skip(1) {
                println!("  {line}");
            }
        }
    }
    // Chase-repair the database to a universal model.
    let mut engine = ChaseEngine::new(
        &constraints,
        db,
        ChasePolicy::Restricted,
        ChaseBudget::default(),
    )
    .unwrap();
    let outcome = engine.run(None);
    println!(
        "  chase repair: {outcome:?}, {} rows after {} steps",
        engine.state().len(),
        engine.steps_fired()
    );
    for td in &constraints {
        assert!(satisfies(engine.state(), td));
    }
    println!("  repaired instance satisfies every constraint ✓");

    // ------------------------------------------------------------
    // EIDs: a conjunctive-conclusion constraint (the baseline class the
    // paper strengthens). One supplier must cover a style in both sizes.
    // ------------------------------------------------------------
    println!("\nEID comparison (Chandra–Lewis–Makowsky class):");
    let scratch = TdBuilder::new(schema.clone())
        .antecedent(["s", "r", "st", "sz"])
        .unwrap()
        .antecedent(["s", "r'", "st'", "sz'"])
        .unwrap()
        .conclusion(["s", "q", "st", "sz"])
        .unwrap()
        .build("scratch")
        .unwrap();
    // Conclusions: (s, q, st, sz) and (s, q, st, sz') — the *same* supplier
    // s, in one shared (existential) region q.
    use template_deps::td_core::ids::AttrId;
    use template_deps::td_core::td::TdRow;
    let s = scratch.conclusion().get(AttrId::new(0));
    let q = scratch.conclusion().get(AttrId::new(1));
    let st = scratch.antecedents()[0].get(AttrId::new(2));
    let sz = scratch.antecedents()[0].get(AttrId::new(3));
    let sz2 = scratch.antecedents()[1].get(AttrId::new(3));
    let eid = Eid::new(
        schema,
        scratch.antecedents().to_vec(),
        vec![TdRow::new([s, q, st, sz]), TdRow::new([s, q, st, sz2])],
        "same-supplier-one-region-both-sizes",
    )
    .unwrap();
    println!(
        "  eid holds in repaired db: {}",
        eid_satisfies(engine.state(), &eid)
    );
    // The EID implies its single-atom weakenings (TDs), not conversely.
    let weaker = Eid::from_td(&constraints[1]);
    match implies_eid(std::slice::from_ref(&eid), &weaker, ChaseBudget::default()).unwrap() {
        EidVerdict::Implied => println!("  eid ⊨ style-travels ✓"),
        other => println!("  unexpected: {other:?}"),
    }
    match implies_eid(std::slice::from_ref(&weaker), &eid, ChaseBudget::default()).unwrap() {
        EidVerdict::NotImplied(m) => println!(
            "  style-travels ⊭ eid (countermodel with {} rows) ✓",
            m.len()
        ),
        other => println!("  unexpected: {other:?}"),
    }
}
