//! Semigroup laboratory: the word-problem substrate on its own.
//!
//! Demonstrates derivation search, normalization, bounded congruence
//! closure, rewriting, the cancellation property checkers, identity
//! adjunction, and the finite-model finder.
//!
//! ```text
//! cargo run --example semigroup_lab
//! ```

use template_deps::prelude::*;
use template_deps::td_semigroup::derivation::search_goal_derivation;
use template_deps::td_semigroup::model_search::ModelSearchResult;
use template_deps::td_semigroup::quotient::BoundedQuotient;
use template_deps::td_semigroup::rewrite::RewriteSystem;

fn main() {
    // ----------------------------------------------------------------
    // A presentation with long equations, normalized per the paper.
    // ----------------------------------------------------------------
    println!("=== normalization (the paper's ABC = DA example) ===");
    let alphabet = Alphabet::new(["A0", "A", "B", "C", "D", "0"], "A0", "0").unwrap();
    let eq = Equation::parse("A B C = D A", &alphabet).unwrap();
    let p = Presentation::new(alphabet, vec![eq])
        .unwrap()
        .zero_saturated();
    let n = normalize(&p).unwrap();
    println!("original:\n{p}");
    println!("normalized:\n{}", n.presentation);
    println!("fresh symbol definitions:");
    for &(sym, a, b) in &n.definitions {
        let al = n.presentation.alphabet();
        println!("  {} := {} · {}", al.name(sym), al.name(a), al.name(b));
    }

    // ----------------------------------------------------------------
    // Derivation search on the running derivable example.
    // ----------------------------------------------------------------
    println!("\n=== derivation search: A1 A1 = A0, A1 A1 = 0 ===");
    let derivable =
        td_semigroup::parser::parse("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n")
            .unwrap();
    match search_goal_derivation(&derivable, &SearchBudget::default()) {
        SearchResult::Found(d) => {
            let words = d.replay(&derivable).unwrap();
            let route: Vec<String> = words
                .iter()
                .map(|w| w.render(derivable.alphabet()))
                .collect();
            println!(
                "A0 = 0 derivable in {} steps: {}",
                d.len(),
                route.join(" => ")
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // The bounded quotient agrees.
    let mut q = BoundedQuotient::build(&derivable, 4);
    println!(
        "bounded quotient (len ≤ 4): universe {} words, {} classes, goal identified: {:?}",
        q.universe_size(),
        q.class_count(),
        q.goal_identified(&derivable)
    );

    // Rewriting to normal form.
    let rs = RewriteSystem::from_presentation(&derivable);
    let w = Word::parse("A1 A1 A1 A1", derivable.alphabet()).unwrap();
    let (nf, steps) = rs.normal_form(&w);
    println!(
        "rewriting {} => {} in {} steps",
        w.render(derivable.alphabet()),
        nf.render(derivable.alphabet()),
        steps.len()
    );

    // ----------------------------------------------------------------
    // The cancellation property (conditions (i) and (ii)).
    // ----------------------------------------------------------------
    println!("\n=== cancellation semigroups with zero ===");
    for (name, g) in [
        ("null(2)", null_semigroup(2)),
        ("null(4)", null_semigroup(4)),
        ("cyclic nilpotent(4)", cyclic_nilpotent(4)),
    ] {
        println!(
            "{name}: zero at {:?}, identity {:?}, cancellation: {}",
            g.zero().map(|z| z.index()),
            g.identity().map(|i| i.index()),
            has_cancellation_property(&g)
        );
    }
    // A violator of condition (ii): a·e = a with a ≠ 0.
    let violator = FiniteSemigroup::new(vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 0, 2]]).unwrap();
    println!(
        "violator (a·e = a): cancellation: {} — witness: {:?}",
        has_cancellation_property(&violator),
        cancellation_violation(&violator)
    );

    // Adjoining an identity preserves cancellation iff (ii) held.
    let (g2, id) = adjoin_identity(&cyclic_nilpotent(3)).unwrap();
    println!(
        "cyclic_nilpotent(3) + identity: order {}, identity {}, cancellation preserved: {}",
        g2.len(),
        id,
        has_cancellation_property(&g2)
    );
    let (v2, _) = adjoin_identity(&violator).unwrap();
    println!(
        "violator + identity: cancellation preserved: {} (condition (ii) was necessary)",
        has_cancellation_property(&v2)
    );

    // ----------------------------------------------------------------
    // Finite-model search for a countermodel.
    // ----------------------------------------------------------------
    println!("\n=== finite countermodel search ===");
    let sq = td_semigroup::parser::parse("alphabet A0 A1 0\neq A0 A0 = A1\nzerosat\n").unwrap();
    println!("instance: A0 A0 = A1 (zero-saturated)");
    match find_counter_model(&sq, &ModelSearchOptions::default()).unwrap() {
        ModelSearchResult::Found(g, interp) => {
            println!(
                "found order-{} cancellation semigroup without identity, A0 ↦ e{}, A1 ↦ e{}:",
                g.len(),
                interp.of(sq.alphabet().a0()).index(),
                interp.of(sq.alphabet().sym("A1").unwrap()).index()
            );
            print!("{}", g.render_table());
            println!(
                "checks: S-generated {}, satisfies equations {}, cancellation {}",
                is_generated_by(&g, &interp),
                satisfies_presentation(&g, &interp, &sq),
                has_cancellation_property(&g)
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // And the derivable instance has no countermodel at small orders.
    match find_counter_model(
        &derivable,
        &ModelSearchOptions {
            min_size: 2,
            max_size: 3,
            max_nodes: 5_000_000,
        },
    )
    .unwrap()
    {
        ModelSearchResult::ExhaustedSizes { nodes } => println!(
            "derivable instance: no countermodel of order ≤ 3 ({nodes} nodes searched) — \
             as the Main Lemma demands"
        ),
        other => println!("unexpected: {other:?}"),
    }
}
