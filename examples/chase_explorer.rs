//! Chase explorer: parse a dependency file (the td-core text format) and
//! interactively inspect inference between its dependencies.
//!
//! ```text
//! cargo run --example chase_explorer                # built-in demo file
//! cargo run --example chase_explorer -- FILE        # your own file
//! ```
//!
//! The file format (see `td_core::parser`):
//!
//! ```text
//! schema R(A, B, C)
//! td join-a: (a, b, c) (a, b2, c2) -> (a, b, c2)
//! td fig1:   (a, b, c) (a, b2, c2) -> (*, b, c2)
//! row (x, y, z)
//! ```

use template_deps::prelude::*;

const DEMO: &str = "
# Garment warehouse constraints.
schema R(SUPPLIER, STYLE, SIZE)

# Every supplier carries the full cross product of its styles and sizes.
td join-supplier: (a, b, c) (a, b2, c2) -> (a, b, c2)

# Weaker: someone carries each (style, size) combination a supplier spans.
td fig1: (a, b, c) (a, b2, c2) -> (*, b, c2)

# Each style is carried in each size somewhere (global cross product).
td global-cross: (a, b, c) (a2, b2, c2) -> (*, b, c2)

row (stlaurent, dress, s10)
row (stlaurent, brief, s36)
row (bvd, brief, s36)
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_owned(),
    };
    let file = td_core::parser::parse(&text).unwrap_or_else(|e| panic!("{e}"));
    println!("schema: {}", file.schema);
    println!(
        "{} dependencies, {} rows\n",
        file.tds.len(),
        file.instance.len()
    );

    // Per-dependency report.
    for td in &file.tds {
        println!("{td}");
        println!(
            "  {} | {} antecedents | existential columns: {:?}",
            if td.is_full() { "full" } else { "embedded" },
            td.antecedent_count(),
            td.existential_columns()
                .iter()
                .map(|&c| file.schema.attr_name(c))
                .collect::<Vec<_>>(),
        );
        if !file.instance.is_empty() {
            println!("  holds in the instance: {}", satisfies(&file.instance, td));
        }
    }

    // Termination guarantee for the whole set.
    println!(
        "\nweakly acyclic (chase guaranteed to terminate): {}",
        td_core::chase::weakly_acyclic(&file.tds)
    );

    // Pairwise implication matrix.
    println!("\nimplication matrix (row set ⊨ column dependency):");
    print!("{:>16}", "");
    for td in &file.tds {
        print!("{:>16}", td.name());
    }
    println!();
    let budget = ChaseBudget::default();
    for premise in &file.tds {
        print!("{:>16}", premise.name());
        for goal in &file.tds {
            let verdict = implies(std::slice::from_ref(premise), goal, budget).unwrap();
            let mark = match verdict {
                InferenceVerdict::Implied(_) => "yes",
                InferenceVerdict::NotImplied(_) => "no",
                InferenceVerdict::Unknown(_) => "?",
            };
            print!("{mark:>16}");
        }
        println!();
    }

    // Redundancy analysis of the whole set.
    println!("\nredundancy within the set:");
    for i in 0..file.tds.len() {
        let verdict = td_core::inference::redundant(&file.tds, i, budget).unwrap();
        println!(
            "  {}: {}",
            file.tds[i].name(),
            match verdict {
                InferenceVerdict::Implied(p) =>
                    format!("redundant (implied by the rest, {} chase steps)", p.len()),
                InferenceVerdict::NotImplied(m) =>
                    format!("essential (countermodel with {} rows)", m.len()),
                InferenceVerdict::Unknown(_) => "unknown (budget exhausted)".into(),
            }
        );
    }

    // Chase the instance to a universal model under all dependencies.
    if !file.instance.is_empty() {
        println!("\nchasing the instance with all dependencies…");
        let mut engine = ChaseEngine::new(
            &file.tds,
            file.instance.clone(),
            ChasePolicy::Restricted,
            ChaseBudget::default(),
        )
        .unwrap();
        let outcome = engine.run(None);
        println!(
            "  outcome: {outcome:?} after {} steps, {} rounds; {} rows",
            engine.steps_fired(),
            engine.rounds_run(),
            engine.state().len()
        );
        if outcome == ChaseOutcome::Terminated {
            println!("  the result is a universal model:");
            println!("{}", engine.state());
        }
    }
}
