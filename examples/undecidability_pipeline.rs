//! The undecidability reduction, end to end — both directions of the
//! Reduction Theorem on concrete word-problem instances.
//!
//! ```text
//! cargo run --example undecidability_pipeline
//! ```

use template_deps::prelude::*;
use template_deps::td_reduction::part_b::RowLabel;
use template_deps::td_reduction::verify::structural_report;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    // ---------------------------------------------------------------
    // Side 1: a derivable instance — A1·A1 = A0 and A1·A1 = 0, so
    //         A0 ⇒ A1 A1 ⇒ 0. Part (A) compiles the derivation into a
    //         chase proof that D ⊨ D0.
    // ---------------------------------------------------------------
    banner("derivable instance: A1 A1 = A0, A1 A1 = 0");
    let derivable =
        td_semigroup::parser::parse("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n")
            .unwrap();
    print!("{derivable}");

    let run = solve(&derivable, &Budgets::default()).unwrap();
    let report = structural_report(&run.system);
    println!(
        "reduction: {} symbols -> {} attributes (2n+2), {} rules -> {} dependencies, \
         max antecedents = {}",
        report.n_symbols,
        report.n_attributes,
        report.n_rules,
        report.n_deps,
        report.max_antecedents
    );
    match &run.outcome {
        PipelineOutcome::Implied { derivation, proof } => {
            println!(
                "verdict: D ⊨ D0  (derivation of {} steps, chase proof of {} firings)",
                derivation.len(),
                proof.proof.len()
            );
            let words = derivation.replay(&run.normalized.presentation).unwrap();
            let alphabet = run.normalized.presentation.alphabet();
            let route: Vec<String> = words.iter().map(|w| w.render(alphabet)).collect();
            println!("word route: {}", route.join("  =>  "));
            println!("{}", proof.proof);
            proof.verify(&run.system).unwrap();
            println!("chase proof independently re-verified ✓");
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // ---------------------------------------------------------------
    // Side 2: a refutable instance — only the zero equations. The
    //         2-element null semigroup {0, a} (a·a = 0) is a finite
    //         cancellation semigroup without identity in which A0 ≠ 0;
    //         part (B) turns it into a finite database where all of D
    //         hold but D0 fails.
    // ---------------------------------------------------------------
    banner("refutable instance: zero equations only over {A0, 0}");
    let refutable = td_semigroup::parser::parse("alphabet A0 0\nzerosat\n").unwrap();
    print!("{refutable}");

    let run = solve(&refutable, &Budgets::default()).unwrap();
    match &run.outcome {
        PipelineOutcome::Refuted { model, report } => {
            println!(
                "verdict: D ⊭ D0 over finite databases — countermodel with {} rows",
                model.len()
            );
            println!("G' multiplication table (identity adjoined):");
            print!("{}", model.g_prime.render_table());
            println!("rows (paper's P ∪ Q):");
            let alphabet = run.system.attrs.alphabet();
            for (i, label) in model.labels.iter().enumerate() {
                match label {
                    RowLabel::P(e) => println!("  row {i}: P element {e}"),
                    RowLabel::Q(a, s, b) => {
                        println!("  row {i}: Q triple <{a}, {}, {b}>", alphabet.name(*s))
                    }
                }
            }
            println!("{}", model.eq_instance);
            println!(
                "verification: all D hold: {}, D0 fails: {}, Fact 1: {}, Fact 2: {}",
                report.violated_deps.is_empty(),
                report.d0_fails,
                report.fact1,
                report.fact2
            );
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // ---------------------------------------------------------------
    // The paper's (NOT D0) witness, replayed: t1 = I, t2 = A0,
    // t3 = <I, A0, A0> — no 0-triangle can complete it.
    // ---------------------------------------------------------------
    banner("why D0 fails: the paper's witness");
    println!(
        "In the countermodel, ≈_0' and ≈_0'' are trivial (the paper: \"≈_0 is\n\
         empty\"), so the conclusion of D0 would need a row equal to both t1\n\
         and t2 at once — impossible since t1 = I ≠ A0 = t2."
    );

    // ---------------------------------------------------------------
    // Scaling: the construction is uniform in the instance.
    // ---------------------------------------------------------------
    banner("structural scaling (Table T1)");
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>16}",
        "n", "eqs", "deps", "attrs", "max antecedents"
    );
    for n_regular in 1..=5 {
        let p = {
            let alphabet = Alphabet::standard(n_regular);
            let mut p = Presentation::new(alphabet, vec![]).unwrap();
            p.saturate_with_zero_equations();
            p
        };
        let system = build_system(&p).unwrap();
        let r = structural_report(&system);
        println!(
            "{:>4} {:>8} {:>8} {:>8} {:>16}",
            r.n_symbols, r.n_rules, r.n_deps, r.n_attributes, r.max_antecedents
        );
    }
    println!(
        "\n(antecedents stay ≤ 5 while attributes grow as 2n+2 — the paper's\n\
              complementarity with Vardi's reduction, which bounds attributes\n\
              and lets antecedents grow.)"
    );
}
