//! Experiment T9 — `tdq serve` transport saturation: the fixed worker
//! pool against the thread-per-connection baseline at 1, 4, and 16
//! concurrent clients.
//!
//! Every client pipelines a burst of warm-cache `wp` requests (the engine
//! is prewarmed, so each request is a canonical-key cache hit), which
//! isolates transport overhead — accept/poll multiplexing, line framing,
//! reply writes — from solver time. One iteration = serve a full burst
//! from every client and shut the server down cleanly; requests/second is
//! `clients * PER_CLIENT / median_iteration_time`. Shape claim: on a
//! multi-core machine the pool holds throughput roughly flat as clients
//! grow past the core count, while thread-per-connection pays a
//! per-connection spawn plus scheduler churn. On a single core the two
//! transports are expected to tie (the recorded numbers in
//! `BENCH_serve.json` note the machine's CPU count for exactly this
//! reason).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use template_deps::serve;
use template_deps::td_reduction::engine::Engine;

/// Pipelined requests per client per iteration.
const PER_CLIENT: usize = 32;

/// A serve transport under test: blocks until shutdown, like
/// `serve_listen_pooled` / `serve_listen_threaded`.
type Transport = dyn Fn(&Engine, TcpListener) -> std::io::Result<()> + Sync;

/// The warm-cache request every client repeats.
fn wp_line(id: usize) -> String {
    format!(
        "{{\"id\":\"r{id}\",\"op\":\"wp\",\"alphabet\":[\"A0\",\"A1\",\"0\"],\
         \"eqs\":[\"A1 A1 = A0\",\"A1 A1 = 0\"]}}"
    )
}

/// One full saturation round: start a server on an ephemeral port, slam
/// it with `clients` concurrent pipelined bursts, verify every reply
/// arrived in order, then shut down cleanly and join everything.
fn saturate(transport: &Transport, clients: usize) {
    let engine = Engine::new();
    // Prewarm: the solve happens once, outside the timed transport work.
    let warm = serve::handle_line(&engine, &wp_line(0));
    assert!(
        warm.text.contains("\"verdict\":\"implied\""),
        "{}",
        warm.text
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    std::thread::scope(|s| {
        let engine = &engine;
        let server = s.spawn(move || transport(engine, listener));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = &stream;
                    let burst: String = (0..PER_CLIENT)
                        .map(|i| wp_line(c * PER_CLIENT + i) + "\n")
                        .collect();
                    writer.write_all(burst.as_bytes()).expect("send burst");
                    for i in 0..PER_CLIENT {
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("reply");
                        assert!(
                            line.starts_with(&format!("{{\"id\":\"r{}\"", c * PER_CLIENT + i)),
                            "client {c} reply {i} out of order: {line}"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
        let stream = TcpStream::connect(addr).expect("connect control");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = &stream;
        writeln!(writer, "{{\"id\":\"q\",\"op\":\"shutdown\"}}").expect("send shutdown");
        let mut bye = String::new();
        reader.read_line(&mut bye).expect("shutdown reply");
        server.join().expect("server thread").expect("serve result");
    });
}

fn bench_serve_saturation(c: &mut Criterion) {
    let pool_width = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(4);
    let transports: [(&str, &Transport); 2] = [
        ("pooled", &move |e: &Engine, l: TcpListener| {
            serve::serve_listen_pooled(e, l, pool_width)
        }),
        ("threaded", &serve::serve_listen_threaded),
    ];
    for (name, transport) in transports {
        let mut group = c.benchmark_group(format!("serve_saturation/{name}"));
        group.sample_size(10);
        for clients in [1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::from_parameter(clients),
                &clients,
                |b, &clients| b.iter(|| saturate(transport, clients)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_serve_saturation);
criterion_main!(benches);
