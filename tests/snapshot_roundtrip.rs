//! Property tests for the decision-cache snapshot layer
//! (`td_reduction::snapshot` + `DecisionCache::export` +
//! `Engine::{save,load}_snapshot`): save→load over randomly generated
//! cached corpora must reproduce identical `get` results and `len`, and
//! every mutated, truncated, or wrong-version image must be rejected with
//! a positioned error that leaves the target cache untouched.

use proptest::prelude::*;
use template_deps::td_core::canon::{CanonKey, CANON_SCHEME_VERSION};
use template_deps::td_reduction::cache::{CachedOutcome, CachedVerdict, DecisionCache};
use template_deps::td_reduction::engine::{Engine, EngineConfig, LoadStats};
use template_deps::td_reduction::error::RedError;
use template_deps::td_reduction::pipeline::SpendReport;
use template_deps::td_reduction::snapshot;

/// Strategy: one arbitrary cached entry. Keys are fabricated raw digests
/// (`CanonKey::from_raw`) — the snapshot layer is agnostic to how a key
/// was minted, and real canonicalizations are too slow for proptest
/// corpora.
fn arb_entry() -> impl Strategy<Value = (CanonKey, CachedOutcome)> {
    (
        proptest::collection::vec(0..u64::MAX, 2),
        0..2u32,
        0..u64::MAX,
        0..u64::MAX,
        0..8u32,
    )
        .prop_map(|(raw, tag, a, b, flags)| {
            let key = CanonKey::from_raw((u128::from(raw[0]) << 64) | u128::from(raw[1]));
            let verdict = if tag == 0 {
                CachedVerdict::Implied {
                    derivation_steps: (a % (usize::MAX as u64)) as usize,
                    proof_firings: (b % (usize::MAX as u64)) as usize,
                }
            } else {
                CachedVerdict::Refuted {
                    model_rows: (a % (usize::MAX as u64)) as usize,
                }
            };
            let spend = SpendReport {
                fastpath_checks: a.rotate_left(17) ^ b,
                fastpath_truncated: flags & 4 != 0,
                derivation_states: (b % (usize::MAX as u64)) as usize,
                derivation_truncated: flags & 1 != 0,
                model_nodes: a ^ b,
                model_truncated: flags & 2 != 0,
            };
            (key, CachedOutcome { verdict, spend })
        })
}

/// Strategy: a corpus of up to 24 entries with distinct keys (last write
/// wins in the cache, so duplicate keys would make `len` comparisons
/// ambiguous rather than interesting).
fn arb_corpus() -> impl Strategy<Value = Vec<(CanonKey, CachedOutcome)>> {
    proptest::collection::vec(arb_entry(), 0..24).prop_map(|mut entries| {
        let mut seen = std::collections::HashSet::new();
        entries.retain(|&(k, _)| seen.insert(k.raw()));
        entries
    })
}

fn populate(entries: &[(CanonKey, CachedOutcome)]) -> DecisionCache {
    let cache = DecisionCache::new(4);
    for &(k, o) in entries {
        cache.insert(k, o);
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Save→load is the identity on cache contents: same `len`, same
    /// `get` on every key (and still `None` off-corpus).
    #[test]
    fn save_load_reproduces_gets_and_len(entries in arb_corpus(), probe in arb_entry()) {
        let source = populate(&entries);
        let image = snapshot::encode(&source.export());

        let restored = DecisionCache::new(7); // shard count need not match
        let snap = snapshot::decode(&image).unwrap();
        prop_assert_eq!(snap.canon_version, CANON_SCHEME_VERSION);
        for (k, o) in snap.entries {
            restored.insert(k, o);
        }
        prop_assert_eq!(restored.len(), source.len());
        for &(k, o) in &entries {
            prop_assert_eq!(restored.get(k), Some(o));
        }
        let (probe_key, _) = probe;
        prop_assert_eq!(restored.get(probe_key), source.get(probe_key));
    }

    /// Flipping any single byte of the image makes `decode` fail with a
    /// positioned error — and an engine-level load leaves the target
    /// cache untouched. (Flipping a count/record byte is caught by the
    /// checksum; flipping a checksum byte is caught by the re-computation;
    /// header bytes by magic/version checks.)
    #[test]
    fn any_single_byte_mutation_is_rejected(
        entries in arb_corpus(),
        pos_pick in 0..u32::MAX,
        bit in 0..8u32,
    ) {
        let image = snapshot::encode(&populate(&entries).export());
        let pos = (pos_pick as usize) % image.len();
        let mut bad = image.clone();
        bad[pos] ^= 1u8 << bit;

        let err = snapshot::decode(&bad).expect_err("mutated image must be rejected");
        prop_assert!(err.offset <= bad.len(), "offset {} out of image", err.offset);

        let engine = Engine::new();
        let result = engine.load_snapshot(&bad);
        prop_assert!(matches!(result, Err(RedError::Snapshot(_))));
        prop_assert_eq!(engine.cache().len(), 0, "never partially loaded");
    }

    /// Truncating the image anywhere makes `decode` fail with an error
    /// positioned at or before the cut.
    #[test]
    fn any_truncation_is_rejected(entries in arb_corpus(), cut_pick in 0..u32::MAX) {
        let image = snapshot::encode(&populate(&entries).export());
        let cut = (cut_pick as usize) % image.len(); // strictly shorter
        let err = snapshot::decode(&image[..cut]).expect_err("truncation must be rejected");
        prop_assert!(err.offset <= image.len());

        let engine = Engine::new();
        prop_assert!(engine.load_snapshot(&image[..cut]).is_err());
        prop_assert_eq!(engine.cache().len(), 0);
    }

    /// A snapshot stamped with any foreign canon-scheme version loads
    /// zero keys (all skipped), leaving the target cache untouched.
    #[test]
    fn any_foreign_canon_version_loads_nothing(
        entries in arb_corpus(),
        bump in 1..u32::MAX,
    ) {
        let foreign_version = CANON_SCHEME_VERSION.wrapping_add(bump);
        let exported = populate(&entries).export();
        let image = snapshot::encode_with_canon_version(&exported, foreign_version);

        let engine = Engine::with_config(EngineConfig::default());
        let stats = engine.load_snapshot(&image).unwrap();
        prop_assert_eq!(stats, LoadStats {
            keys_loaded: 0,
            keys_skipped_version: exported.len(),
        });
        prop_assert_eq!(engine.cache().len(), 0, "foreign keys never merged");
    }
}
