//! Differential property tests for the axiom-driven fast path.
//!
//! The prescreen ([`prescreen`]) is performance machinery: it may settle a
//! query in microseconds, but it must never *disagree* with the sequential
//! pipeline — the pure oracle that never consults the fast path. These
//! tests pit the two against each other on random word-problem instances:
//!
//! * a fast-settled verdict is on the **same side** as the oracle's
//!   certificate whenever the oracle settles;
//! * every fast-settled reason **replays** against the reduction system;
//! * fast-settled runs spend **exactly zero** chase/model-search budget
//!   (the searches never started), and the prescreen's own spend is
//!   deterministic across repeated calls.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_semigroup::alphabet::Alphabet;
use template_deps::td_semigroup::equation::Equation;
use template_deps::td_semigroup::presentation::Presentation;

/// Strategy: a random zero-saturated presentation over `A0`, `A1`, `0`:
/// up to three equations whose sides are words of length 1–2. The family
/// mixes derivable instances (e.g. `A0 = 0` aliases), refutable ones
/// (`x·y = 0` shapes), and everything between.
fn arb_presentation() -> impl Strategy<Value = Presentation> {
    proptest::collection::vec((0..7u32, 0..3u32), 0..=3).prop_map(|eqs| {
        let alphabet = Alphabet::standard(2);
        const WORDS: [&str; 7] = ["A0", "A1", "0", "A1 A1", "A0 A1", "A1 A0", "A1 0"];
        const SIDES: [&str; 3] = ["A0", "A1", "0"];
        let equations: Vec<Equation> = eqs
            .into_iter()
            .map(|(l, r)| {
                let text = format!("{} = {}", WORDS[l as usize], SIDES[r as usize]);
                Equation::parse(&text, &alphabet).unwrap()
            })
            .collect();
        let mut p = Presentation::new(alphabet, equations).unwrap();
        p.saturate_with_zero_equations();
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prescreen, run directly on the reduction system, never settles
    /// on the opposite side of the sequential oracle, and every settled
    /// reason replays. Repeated calls spend identically (determinism).
    #[test]
    fn prescreen_agrees_with_the_sequential_oracle(p in arb_presentation()) {
        // Same front end as the pipeline: saturate, normalize, reduce.
        let normalized = normalize(&p.zero_saturated()).unwrap();
        let system = build_system(&normalized.presentation).unwrap();
        let budget = FastBudget::default();
        let pre = prescreen(&system, &budget).unwrap();
        let again = prescreen(&system, &budget).unwrap();
        prop_assert_eq!(pre, again, "prescreen must be deterministic");
        let Some(verdict) = pre.verdict else { return Ok(()) };
        prop_assert!(replay(&system, &verdict).unwrap(), "{verdict:?}");
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        match &seq.outcome {
            PipelineOutcome::Implied { .. } => prop_assert!(
                verdict.is_implied(),
                "oracle implies, fast path refutes: {verdict:?}"
            ),
            PipelineOutcome::Refuted { .. } => prop_assert!(
                !verdict.is_implied(),
                "oracle refutes, fast path implies: {verdict:?}"
            ),
            PipelineOutcome::FastSettled { .. } => prop_assert!(
                false,
                "the sequential oracle never consults the fast path"
            ),
            PipelineOutcome::Unknown { .. } => {
                // The fast verdict is *certain*, so an exhausted oracle is a
                // budget artifact, not a disagreement — and it cannot happen
                // on this family (tiny derivations, size-≤3 countermodels).
                prop_assert!(false, "oracle exhausted on a fast-settleable instance");
            }
        }
    }

    /// Through the pipeline: a raced solve that fast-settles reports zero
    /// chase/model-search spend, exact fast-path spend, and the same side
    /// as the sequential oracle.
    #[test]
    fn fast_settled_runs_spend_nothing_on_the_searches(p in arb_presentation()) {
        let seq = solve_with(&p, &Budgets::default(), SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
        prop_assert_eq!(
            seq.outcome.is_implied(),
            raced.outcome.is_implied(),
            "modes disagree: {:?} vs {:?}",
            seq.outcome,
            raced.outcome
        );
        prop_assert_eq!(seq.spend.fastpath_checks, 0, "the oracle never prescreens");
        if let PipelineOutcome::FastSettled { verdict } = &raced.outcome {
            prop_assert!(replay(&raced.system, verdict).unwrap());
            prop_assert_eq!(raced.spend.derivation_states, 0, "chase search ran");
            prop_assert_eq!(raced.spend.model_nodes, 0, "model search ran");
            prop_assert!(raced.spend.fastpath_checks > 0);
            prop_assert!(!raced.spend.fastpath_truncated, "settled ⇒ exact spend");
            // Both searches report truncated: they never started.
            prop_assert!(raced.spend.derivation_truncated);
            prop_assert!(raced.spend.model_truncated);
        }
    }
}
