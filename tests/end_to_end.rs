//! End-to-end integration: the Main Theorem's two sides, exercised across
//! all three crates, with every certificate independently verified.

use template_deps::prelude::*;
use template_deps::td_core::inference;
use template_deps::td_reduction::verify::structural_report;
use template_deps::td_semigroup::parser::parse as parse_presentation;

/// Instances known to be derivable (goal `A₀ = 0` follows) with the routes
/// their names describe.
fn derivable_instances() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "two-step",
            "alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n",
        ),
        ("direct-identify", "alphabet A0 0\neq A0 = 0\nzerosat\n"),
        (
            "relabel-then-product",
            "alphabet A0 B 0\neq A0 = B\neq B B = B\neq B B = 0\nzerosat\n",
        ),
        (
            "through-zero-absorption",
            // A0 => B C; C => 0 …then B 0 => 0.
            "alphabet A0 B C 0\neq B C = A0\neq C = 0\nzerosat\n",
        ),
    ]
}

/// Instances known to be refutable by a finite cancellation semigroup.
fn refutable_instances() -> Vec<(&'static str, &'static str)> {
    vec![
        ("zero-only-1", "alphabet A0 0\nzerosat\n"),
        ("zero-only-2", "alphabet A0 A1 0\nzerosat\n"),
        (
            "square-to-other",
            "alphabet A0 A1 0\neq A0 A0 = A1\nzerosat\n",
        ),
        ("nilpotent-ish", "alphabet A0 A1 0\neq A1 A1 = 0\nzerosat\n"),
    ]
}

/// Solves with the fast path disabled, so the battery always exercises the
/// full certificate machinery regardless of which instances the prescreen
/// could settle.
fn solve_full(p: &Presentation) -> PipelineRun {
    let opts = SolveOptions {
        fastpath: FastPath::Off,
        ..SolveOptions::default()
    };
    solve_with_opts(p, &Budgets::default(), opts).unwrap()
}

#[test]
fn derivable_battery() {
    for (name, text) in derivable_instances() {
        let p = parse_presentation(text).unwrap();
        // The default tier must settle the right side; when the fast path
        // takes it, the reason must replay.
        let fast = solve(&p, &Budgets::default()).unwrap();
        assert!(fast.outcome.is_implied(), "{name}: {:?}", fast.outcome);
        if let PipelineOutcome::FastSettled { verdict } = &fast.outcome {
            assert!(replay(&fast.system, verdict).unwrap(), "{name}");
        }
        // Full certificates, with the fast path out of the way.
        let run = solve_full(&p);
        match &run.outcome {
            PipelineOutcome::Implied { derivation, proof } => {
                // The derivation replays in the normalized presentation.
                let g = run.normalized.presentation.goal();
                derivation
                    .verify(&run.normalized.presentation, &g.lhs, &g.rhs)
                    .unwrap();
                // The chase proof replays against the dependency set.
                proof.verify(&run.system).unwrap();
            }
            other => panic!("{name}: expected Implied, got {other:?}"),
        }
        // Structural claims hold on every instance.
        assert!(structural_report(&run.system).ok(), "{name}");
    }
}

#[test]
fn refutable_battery() {
    for (name, text) in refutable_instances() {
        let p = parse_presentation(text).unwrap();
        // Default tier: correct side, replayable reason when fast-settled.
        let fast = solve(&p, &Budgets::default()).unwrap();
        assert!(fast.outcome.is_refuted(), "{name}: {:?}", fast.outcome);
        if let PipelineOutcome::FastSettled { verdict } = &fast.outcome {
            assert!(replay(&fast.system, verdict).unwrap(), "{name}");
        }
        // Full part (B) certificate, with the fast path out of the way.
        let run = solve_full(&p);
        match &run.outcome {
            PipelineOutcome::Refuted { model, report } => {
                assert!(report.ok(), "{name}: {report:?}");
                // Re-verify from scratch with the core-layer checkers only.
                assert!(
                    td_core::satisfaction::satisfies_all(&model.instance, &run.system.deps),
                    "{name}: some dependency fails"
                );
                assert!(
                    !td_core::satisfaction::satisfies(&model.instance, &run.system.d0),
                    "{name}: D0 unexpectedly holds"
                );
            }
            other => panic!("{name}: expected Refuted, got {other:?}"),
        }
    }
}

/// The Main Theorem's statement, verbatim, through the generic inference
/// API: on derivable instances the (unguided, fair) chase proves `D ⊨ D₀`.
#[test]
fn unguided_inference_agrees_on_derivable_instances() {
    for (name, text) in derivable_instances() {
        let p = parse_presentation(text).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        let budget = ChaseBudget {
            max_steps: 20_000,
            max_rows: 20_000,
            max_rounds: 200,
        };
        let verdict = inference::implies(&run.system.deps, &run.system.d0, budget).unwrap();
        match verdict {
            InferenceVerdict::Implied(proof) => {
                let (frozen, _, goal) = inference::freeze(&run.system.d0).unwrap();
                proof
                    .verify(&frozen, &run.system.deps, Some(&goal))
                    .unwrap();
            }
            other => panic!("{name}: unguided chase should prove D0, got {other:?}"),
        }
    }
}

/// On refutable instances the unguided chase must never claim `Implied`
/// (soundness); on the zero-only instances it even terminates, yielding a
/// finite countermodel on its own.
#[test]
fn unguided_inference_sound_on_refutable_instances() {
    for (name, text) in refutable_instances() {
        let p = parse_presentation(text).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        let budget = ChaseBudget {
            max_steps: 2_000,
            max_rows: 2_000,
            max_rounds: 50,
        };
        let verdict = inference::implies(&run.system.deps, &run.system.d0, budget).unwrap();
        assert!(!verdict.is_implied(), "{name}: soundness violated");
        if let InferenceVerdict::NotImplied(model) = verdict {
            assert!(td_core::satisfaction::satisfies_all(
                &model,
                &run.system.deps
            ));
            assert!(!td_core::satisfaction::satisfies(&model, &run.system.d0));
        }
    }
}

/// Dropping any single D1 dependency of an equation used by the derivation
/// must not be *unsound* — the remaining set still implies whatever it
/// implies — but the full set is needed for the guided proof to replay.
#[test]
fn proofs_fail_against_wrong_dependency_sets() {
    let p = parse_presentation("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n").unwrap();
    let run = solve(&p, &Budgets::default()).unwrap();
    let PipelineOutcome::Implied { proof, .. } = &run.outcome else {
        panic!("derivable");
    };
    // Replaying against a *truncated* dependency list puts the proof's
    // dependency indices out of range: the verifier must reject rather than
    // misattribute steps.
    let truncated = &run.system.deps[..1];
    assert!(proof
        .proof
        .verify(&proof.frozen, truncated, Some(&proof.goal))
        .is_err());
    // Replaying against a *different* reduction system (same indices,
    // different dependencies) must also be rejected.
    let other = solve(
        &parse_presentation("alphabet A0 A1 0\nzerosat\n").unwrap(),
        &Budgets::default(),
    )
    .unwrap();
    assert!(proof
        .proof
        .verify(&proof.frozen, &other.system.deps, Some(&proof.goal))
        .is_err());
}

/// The two halves never overlap: no instance in the battery is both
/// implied and refuted. (Consistency of the harness itself.)
#[test]
fn verdicts_are_exclusive() {
    for (_, text) in derivable_instances()
        .into_iter()
        .chain(refutable_instances())
    {
        let p = parse_presentation(text).unwrap();
        let run = solve(&p, &Budgets::default()).unwrap();
        let implied = run.outcome.is_implied();
        let refuted = run.outcome.is_refuted();
        assert!(implied ^ refuted, "every battery instance must resolve");
    }
}

/// Scaling families from the bench crate resolve correctly and their
/// guided proofs have the predicted sizes.
#[test]
fn scaling_families_resolve() {
    for k in 1..=5 {
        let p = td_bench::relabel_chain(k);
        let run = solve(&p, &Budgets::default()).unwrap();
        let PipelineOutcome::Implied { derivation, proof } = &run.outcome else {
            panic!("relabel_chain({k}) must be implied");
        };
        assert_eq!(derivation.len(), k + 1);
        // Each relabeling step fires exactly one dependency.
        assert_eq!(proof.proof.len(), k + 1);
    }
    for k in 1..=4 {
        let p = td_bench::product_chain(k);
        let mut budgets = Budgets::default();
        budgets.derivation.max_word_len = k + 2;
        let run = solve(&p, &budgets).unwrap();
        let PipelineOutcome::Implied { derivation, proof } = &run.outcome else {
            panic!("product_chain({k}) must be implied");
        };
        assert_eq!(derivation.len(), 2 * k);
        // k expansions cost 3 firings each; k contractions cost 1 each.
        assert_eq!(proof.proof.len(), 3 * k + k);
    }
}

/// Tightness of the construction: dropping the one dependency family that
/// can create the *first* 0-triangle (D1 of the equation `A1 A1 = 0`)
/// makes `D₀` underivable — every other producer of 0-triangles needs an
/// existing one in its antecedents.
#[test]
fn reduction_is_tight_without_the_contraction_rule() {
    let p = parse_presentation("alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n").unwrap();
    let run = solve(&p, &Budgets::default()).unwrap();
    assert!(run.outcome.is_implied(), "sanity: the full set implies D0");
    // Remove D1(A1 A1 = 0) — rule index 1, dependency k=1.
    let cut = run.system.dep_index(1, 1);
    let weakened: Vec<Td> = run
        .system
        .deps
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != cut)
        .map(|(_, t)| t.clone())
        .collect();
    let budget = ChaseBudget {
        max_steps: 5_000,
        max_rows: 5_000,
        max_rounds: 60,
    };
    let verdict = inference::implies(&weakened, &run.system.d0, budget).unwrap();
    assert!(
        !verdict.is_implied(),
        "without the contraction dependency the goal must be unreachable"
    );
}

/// Minimizing the unguided chase proof brings it down to (or near) the
/// guided proof's size — the exploratory firings were inessential.
#[test]
fn unguided_proofs_minimize_toward_guided() {
    use template_deps::td_reduction::part_a::{prove_part_a, prove_unguided};
    use template_deps::td_semigroup::derivation::{search_goal_derivation, SearchBudget};
    for k in [2usize, 3] {
        let p = td_bench::product_chain(k);
        let system = build_system(&p).unwrap();
        let derivation = search_goal_derivation(
            &p,
            &SearchBudget {
                max_word_len: k + 2,
                max_states: 500_000,
            },
        )
        .derivation()
        .unwrap()
        .clone();
        let guided = prove_part_a(&system, &p, &derivation).unwrap();
        let budget = ChaseBudget {
            max_steps: 100_000,
            max_rows: 100_000,
            max_rounds: 1_000,
        };
        let (_, _, _, unguided) = prove_unguided(&system, budget).unwrap();
        let unguided = unguided.expect("derivable instance");
        let minimized = unguided
            .proof
            .minimized(&unguided.frozen, &system.deps, Some(&unguided.goal))
            .unwrap();
        assert!(minimized.len() <= unguided.proof.len());
        // 1-minimality gets at least into the same ballpark as the guided
        // proof (which fires 4k = derivation-proportional steps).
        assert!(
            minimized.len() <= guided.proof.len() + 2,
            "k={k}: minimized {} vs guided {}",
            minimized.len(),
            guided.proof.len()
        );
    }
}

/// Attribute growth: the reduction's schema really grows as 2n+2 while the
/// antecedent bound stays at five (the complementarity the paper points
/// out versus Vardi's construction).
#[test]
fn attribute_growth_with_bounded_antecedents() {
    for n_regular in 1..=6 {
        let p = td_bench::refutable_with_symbols(n_regular);
        let system = build_system(&p).unwrap();
        let r = structural_report(&system);
        assert_eq!(r.n_attributes, 2 * (n_regular + 1) + 2);
        assert_eq!(r.max_antecedents, 5);
        assert!(r.ok());
    }
}
