//! Budget-exhaustion coverage: every `Unknown` path gets a dedicated test.
//!
//! Undecidability makes the `Unknown` verdict a load-bearing part of the
//! API, so each resource cap — the derivation-search state budget, the
//! model-search node cap, and the chase's step/row/round caps — is driven
//! to exhaustion here, asserting that the spent-budget report comes back
//! populated (not zeroed, not defaulted).

use td_bench::relabel_chain;
use template_deps::prelude::*;
use template_deps::td_core::inference::{implies, InferenceVerdict};
use template_deps::td_reduction::pipeline::{solve_with, PipelineOutcome, SolveMode};
use template_deps::td_semigroup::derivation::SearchBudget;
use template_deps::td_semigroup::model_search::ModelSearchOptions;

/// A divergent premise pair plus an unreachable goal: t1 invents C values,
/// t2 invents B values (special-edge cycle B → C → B), while the goal needs
/// a frozen constant the chase can never produce. The restricted chase runs
/// forever, so every chase cap is reachable.
fn divergent_inference() -> (Vec<Td>, Td) {
    let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
    let t1 = TdBuilder::new(schema.clone())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a'", "b'", "c'"])
        .unwrap()
        .conclusion(["a'", "b", "*"])
        .unwrap()
        .build("t1")
        .unwrap();
    let t2 = TdBuilder::new(schema.clone())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a'", "b'", "c'"])
        .unwrap()
        .conclusion(["a", "*", "c'"])
        .unwrap()
        .build("t2")
        .unwrap();
    let d0 = TdBuilder::new(schema)
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a'", "b'", "c'"])
        .unwrap()
        .conclusion(["a", "b'", "c"])
        .unwrap()
        .build("d0")
        .unwrap();
    (vec![t1, t2], d0)
}

fn unknown_report(premises: &[Td], goal: &Td, budget: ChaseBudget) -> UnknownReport {
    match implies(premises, goal, budget).unwrap() {
        InferenceVerdict::Unknown(report) => report,
        other => panic!("expected Unknown, got {other:?}"),
    }
}

use template_deps::td_core::inference::UnknownReport;

#[test]
fn chase_step_cap_reports_spent_budget() {
    let (premises, goal) = divergent_inference();
    let report = unknown_report(
        &premises,
        &goal,
        ChaseBudget {
            max_steps: 3,
            max_rows: usize::MAX,
            max_rounds: usize::MAX,
        },
    );
    assert_eq!(report.steps_fired, 3, "the step cap is exact");
    assert!(report.rounds_run >= 1);
    // Frozen tableau (2 rows) plus one row per fired step.
    assert_eq!(report.state_rows, 2 + 3);
}

#[test]
fn chase_row_cap_reports_spent_budget() {
    let (premises, goal) = divergent_inference();
    let report = unknown_report(
        &premises,
        &goal,
        ChaseBudget {
            max_steps: usize::MAX,
            max_rows: 5,
            max_rounds: usize::MAX,
        },
    );
    assert!(
        report.state_rows >= 5,
        "row cap must have been reached: {report:?}"
    );
    assert!(report.steps_fired > 0);
    assert!(report.rounds_run >= 1);
}

#[test]
fn chase_round_cap_reports_spent_budget() {
    let (premises, goal) = divergent_inference();
    let report = unknown_report(
        &premises,
        &goal,
        ChaseBudget {
            max_steps: usize::MAX,
            max_rows: usize::MAX,
            max_rounds: 2,
        },
    );
    assert_eq!(report.rounds_run, 2, "the round cap is exact");
    assert!(report.steps_fired > 0, "the chase must actually fire");
    assert!(report.state_rows > 2, "rows beyond the frozen tableau");
}

/// A derivable instance whose shortest derivation needs more BFS states
/// than the budget allows, and which the null-semigroup shortcut cannot
/// refute (it is derivable, so no countermodel exists at any size): both
/// sides exhaust honestly.
fn hard_for_tiny_budgets() -> template_deps::td_semigroup::presentation::Presentation {
    relabel_chain(8)
}

#[test]
fn derivation_state_budget_reports_spent_states() {
    let budgets = Budgets {
        derivation: SearchBudget {
            max_word_len: 12,
            max_states: 3,
        },
        model: ModelSearchOptions {
            min_size: 2,
            max_size: 2,
            max_nodes: 10_000,
        },
        chase: ChaseBudget::default(),
    };
    let run = solve_with(&hard_for_tiny_budgets(), &budgets, SolveMode::Sequential).unwrap();
    match run.outcome {
        PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        } => {
            assert!(
                derivation_states > 0 && derivation_states <= 3,
                "state budget of 3 must cap the search: {derivation_states}"
            );
            // The model side ran too (size 2 exhausts quickly but visits
            // at least the null-table node).
            assert!(model_nodes > 0, "model side must report nodes");
        }
        other => panic!("expected Unknown, got {other:?}"),
    }
}

#[test]
fn model_search_node_cap_reports_spent_nodes() {
    let budgets = Budgets {
        derivation: SearchBudget {
            max_word_len: 4,
            max_states: 3,
        },
        model: ModelSearchOptions {
            min_size: 2,
            max_size: 6,
            max_nodes: 1,
        },
        chase: ChaseBudget::default(),
    };
    let run = solve_with(&hard_for_tiny_budgets(), &budgets, SolveMode::Sequential).unwrap();
    match run.outcome {
        PipelineOutcome::Unknown {
            derivation_states,
            model_nodes,
        } => {
            assert!(model_nodes >= 1, "node cap of 1 must be spent exactly");
            assert!(derivation_states > 0);
        }
        other => panic!("expected Unknown, got {other:?}"),
    }
}

/// The raced pipeline reports the same spent budgets as the sequential one
/// when both sides exhaust (nothing found, so nothing is cancelled).
#[test]
fn raced_unknown_reports_identical_spent_budgets() {
    let budgets = Budgets {
        derivation: SearchBudget {
            max_word_len: 12,
            max_states: 3,
        },
        model: ModelSearchOptions {
            min_size: 2,
            max_size: 2,
            max_nodes: 10_000,
        },
        chase: ChaseBudget::default(),
    };
    let p = hard_for_tiny_budgets();
    let seq = solve_with(&p, &budgets, SolveMode::Sequential).unwrap();
    let raced = solve_with(&p, &budgets, SolveMode::Racing).unwrap();
    match (&seq.outcome, &raced.outcome) {
        (
            PipelineOutcome::Unknown {
                derivation_states: a,
                model_nodes: b,
            },
            PipelineOutcome::Unknown {
                derivation_states: c,
                model_nodes: d,
            },
        ) => {
            assert_eq!(a, c);
            assert_eq!(b, d);
        }
        other => panic!("expected two Unknowns, got {other:?}"),
    }
}

/// Enlarging the budgets flips the same instance from `Unknown` to a
/// certified verdict — the caps, not the procedure, were the limit.
#[test]
fn unknown_is_a_budget_artifact_here() {
    let p = hard_for_tiny_budgets();
    let run = solve_with(&p, &Budgets::default(), SolveMode::Racing).unwrap();
    assert!(
        run.outcome.is_implied(),
        "relabel_chain(8) is derivable by construction: {:?}",
        run.outcome
    );
}
