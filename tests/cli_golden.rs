//! Golden-file tests for the `tdq` command-line tool.
//!
//! Each fixture under `tests/golden/` is run through a `tdq` subcommand and
//! the full stdout is compared byte-for-byte against the checked-in
//! `.golden` file, so any output drift shows up as a reviewable diff.
//!
//! To refresh the expectations after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test cli_golden
//! ```
//!
//! then commit the regenerated `.golden` files. Timings are deliberately
//! excluded from golden runs (`--timings` is off), keeping the output
//! deterministic — except for the fast-path golden, which runs `--timings`
//! precisely to pin the *lane structure* of the breakdown and scrubs the
//! wall-clock values (see [`scrub_timings`]).

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs `tdq <cmd> <fixture>` and compares stdout against `<name>.golden`.
fn check_golden(cmd: &str, fixture: &str) {
    check_golden_args(&[cmd], fixture);
}

/// Runs `tdq <args…> <fixture>` (for subcommands that take flags, like
/// `batch --cache-stats`) and compares stdout against `<name>.golden`.
fn check_golden_args(args: &[&str], fixture: &str) {
    let name = fixture
        .strip_suffix(".txt")
        .or_else(|| fixture.strip_suffix(".jsonl"))
        .unwrap_or(fixture);
    check_golden_named(args, fixture, name);
}

/// Runs `tdq <args…> <fixture>` against an explicitly named golden file —
/// used to pin *several* invocations (e.g. `--strategy naive` vs the
/// default) to one golden, which is itself the differential claim that the
/// flag cannot change the output.
fn check_golden_named(args: &[&str], fixture: &str, name: &str) {
    let dir = golden_dir();
    let input = dir.join(fixture);
    let golden = dir.join(format!("{name}.golden"));

    let out = Command::new(env!("CARGO_BIN_EXE_tdq"))
        .args(args)
        .arg(&input)
        .output()
        .expect("tdq runs");
    let cmd = args.join(" ");
    let stdout = String::from_utf8(out.stdout).expect("tdq output is UTF-8");
    assert!(
        out.status.success(),
        "tdq {cmd} {fixture} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &stdout).expect("write golden file");
        return;
    }

    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test cli_golden` \
             to record it)",
            golden.display()
        )
    });
    assert_eq!(
        stdout,
        expected,
        "tdq {cmd} {fixture} drifted from {}\n\
         (if the change is intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test cli_golden` and review the diff)",
        golden.display()
    );
}

/// Replaces every wall-clock duration on `timings:` lines with `_`,
/// keeping the phase/lane labels and punctuation intact. Spend lines are
/// left alone — check/word/node counts are deterministic and *should* be
/// pinned. The parallel-smoke CI job applies the same scrub with `sed`
/// before diffing against the golden.
fn scrub_timings(stdout: &str) -> String {
    let mut out = String::with_capacity(stdout.len());
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("timings: ") {
            let scrubbed: Vec<String> = rest
                .split(' ')
                .map(|tok| {
                    let bare = tok.trim_end_matches(',');
                    if bare.starts_with(|c: char| c.is_ascii_digit()) && bare.ends_with('s') {
                        format!("_{}", &tok[bare.len()..])
                    } else {
                        tok.to_owned()
                    }
                })
                .collect();
            out.push_str("timings: ");
            out.push_str(&scrubbed.join(" "));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Like [`check_golden_named`] but passes the output through
/// [`scrub_timings`] first — for goldens that pin the `--timings` lane
/// structure without pinning nondeterministic wall-clock values.
fn check_golden_scrubbed(args: &[&str], fixture: &str, name: &str) {
    let dir = golden_dir();
    let input = dir.join(fixture);
    let golden = dir.join(format!("{name}.golden"));

    let out = Command::new(env!("CARGO_BIN_EXE_tdq"))
        .args(args)
        .arg(&input)
        .output()
        .expect("tdq runs");
    let cmd = args.join(" ");
    assert!(
        out.status.success(),
        "tdq {cmd} {fixture} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = scrub_timings(&String::from_utf8(out.stdout).expect("tdq output is UTF-8"));

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &stdout).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test cli_golden` \
             to record it)",
            golden.display()
        )
    });
    assert_eq!(
        stdout,
        expected,
        "tdq {cmd} {fixture} drifted from {} (timings scrubbed)\n\
         (if the change is intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test cli_golden` and review the diff)",
        golden.display()
    );
}

/// Runs `tdq <args…>` with `fixture` piped into stdin (the serve
/// transport) and compares stdout against `<name>.golden`.
fn check_golden_stdin(args: &[&str], fixture: &str, name: &str) {
    use std::io::Write;
    let dir = golden_dir();
    let input = std::fs::read(dir.join(fixture)).expect("read session fixture");
    let golden = dir.join(format!("{name}.golden"));

    let mut child = Command::new(env!("CARGO_BIN_EXE_tdq"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("tdq spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(&input)
        .expect("write session");
    let out = child.wait_with_output().expect("tdq runs");
    let cmd = args.join(" ");
    let stdout = String::from_utf8(out.stdout).expect("tdq output is UTF-8");
    assert!(
        out.status.success(),
        "tdq {cmd} < {fixture} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &stdout).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(run `UPDATE_GOLDEN=1 cargo test --test cli_golden` \
             to record it)",
            golden.display()
        )
    });
    assert_eq!(
        stdout,
        expected,
        "tdq {cmd} < {fixture} drifted from {}\n\
         (if the change is intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test cli_golden` and review the diff)",
        golden.display()
    );
}

#[test]
fn deps_garment_golden() {
    check_golden("deps", "deps_garment.txt");
}

#[test]
fn wp_implied_golden() {
    check_golden("wp", "wp_implied.txt");
}

#[test]
fn wp_refuted_golden() {
    check_golden("wp", "wp_refuted.txt");
}

/// A fast-path-settled instance (`A0 = 0` is subsumed in one step) with
/// `--timings` on: pins the verdict, the replayable reason, the `fastpath`
/// phase in the timings breakdown, and the three-lane spend line with the
/// searches reported truncated (they never started). Wall-clock values are
/// scrubbed; lane labels and the exact check count are byte-pinned.
#[test]
fn wp_fastpath_golden() {
    check_golden_scrubbed(&["wp", "--timings"], "wp_fastpath.txt", "wp_fastpath");
}

#[test]
fn normalize_long_golden() {
    check_golden("normalize", "normalize_long.txt");
}

#[test]
fn reduce_tiny_golden() {
    check_golden("reduce", "reduce_tiny.txt");
}

/// The batch pipeline end to end: JSONL verdicts in input order plus the
/// dedup stats line. `--jobs 2` exercises the worker pool; the output is
/// deterministic regardless (verdicts and stats do not depend on
/// scheduling — only wall-clock does).
#[test]
fn batch_small_golden() {
    check_golden_args(
        &["batch", "--jobs", "2", "--cache-stats"],
        "batch_small.jsonl",
    );
}

/// A scripted `serve --stdio` session end to end: wp (cold, then a warm
/// isomorphic hit), batch sharing the same engine cache, deps, the error
/// envelopes for malformed lines, cumulative stats, and shutdown (replies
/// stop exactly there — the post-shutdown request gets none). Sequential
/// stdio processing plus opt-in spend/timings keep the transcript
/// byte-deterministic. The `serve-smoke` CI job pipes the same fixture
/// through a release `tdq` and diffs against the same golden.
#[test]
fn serve_session_golden() {
    check_golden_stdin(
        &["serve", "--stdio"],
        "serve_session.jsonl",
        "serve_session",
    );
}

/// The Σ-session lifecycle end to end over `serve --stdio`: open, an ask
/// under empty Σ (refuted), add_dep flipping the verdict via a resumed
/// chase, a session-cache hit on an isomorphic goal, remove_dep falling
/// back to a from-scratch re-chase, the error envelopes (unknown session
/// id, duplicate dependency name, double close), opt-in session stats,
/// close, and shutdown. Single-session ops are serialized, so the
/// transcript is byte-deterministic; `serve-smoke` CI diffs the same
/// fixture through a release `tdq`.
#[test]
fn session_lifecycle_golden() {
    check_golden_stdin(
        &["serve", "--stdio"],
        "session_lifecycle.jsonl",
        "session_lifecycle",
    );
}

/// A scripted `serve --stdio` session exercising the parallelism surfaces:
/// a wp solve, the Σ-session chase (the path where `--parallel` fans
/// delta-trigger discovery across threads), the opt-in `"jobs":true`
/// stats field pinning the effective worker-pool width, and shutdown.
/// Pinned at `--jobs 2` with sequential discovery; the differential test
/// below replays it at `--parallel 4` against the same bytes.
#[test]
fn serve_parallel_golden() {
    check_golden_stdin(
        &["serve", "--stdio", "--jobs", "2"],
        "serve_parallel.jsonl",
        "serve_parallel",
    );
}

/// `--parallel` must never change an answer or a byte of output: parallel
/// delta-trigger discovery replays the `wp`, `batch`, and serve fixtures
/// against the *same* goldens as sequential discovery. This is the CLI
/// face of the chase's merge-in-sequential-order determinism guarantee.
#[test]
fn parallel_discovery_matches_default_goldens() {
    check_golden_named(&["wp", "--parallel", "4"], "wp_implied.txt", "wp_implied");
    check_golden_named(&["wp", "--parallel", "4"], "wp_refuted.txt", "wp_refuted");
    check_golden_scrubbed(
        &["wp", "--timings", "--parallel", "4"],
        "wp_fastpath.txt",
        "wp_fastpath",
    );
    check_golden_named(
        &["batch", "--jobs", "2", "--parallel", "4", "--cache-stats"],
        "batch_small.jsonl",
        "batch_small",
    );
    check_golden_stdin(
        &["serve", "--stdio", "--jobs", "2", "--parallel", "4"],
        "serve_parallel.jsonl",
        "serve_parallel",
    );
}

/// `--strategy` must never change an answer: the naive full-scan oracle
/// replays the `wp` and `batch` fixtures against the *same* goldens as the
/// default indexed planner.
#[test]
fn strategy_naive_matches_default_goldens() {
    check_golden_named(
        &["wp", "--strategy", "naive"],
        "wp_implied.txt",
        "wp_implied",
    );
    check_golden_named(
        &["wp", "--strategy", "naive"],
        "wp_refuted.txt",
        "wp_refuted",
    );
    check_golden_named(
        &[
            "batch",
            "--jobs",
            "2",
            "--cache-stats",
            "--strategy",
            "naive",
        ],
        "batch_small.jsonl",
        "batch_small",
    );
}
