//! Property-based tests for the database layer: diagrams, normalization,
//! satisfaction across views, chase soundness, inference coherence.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::countermodel::{search_countermodel, SearchOptions, SearchOutcome};
use template_deps::td_core::eq_instance::EqInstance;
use template_deps::td_core::ids::{AttrId, Var};
use template_deps::td_core::inference;
use template_deps::td_core::satisfaction;
use template_deps::td_core::td::TdRow;

/// Strategy: a schema of `arity` columns named C0, C1, ….
fn schema(arity: usize) -> Schema {
    Schema::new("R", (0..arity).map(|i| format!("C{i}"))).unwrap()
}

/// Strategy: a random typed TD over `arity` columns.
fn arb_td(arity: usize) -> impl Strategy<Value = Td> {
    let rows = 1..=3usize;
    let vars = 1..=3u32;
    (
        rows,
        vars,
        proptest::collection::vec(0..100u32, arity * 4 + arity),
    )
        .prop_map(move |(n_rows, n_vars, picks)| {
            let schema = schema(arity);
            let mut it = picks.into_iter();
            let antecedents: Vec<TdRow> = (0..n_rows)
                .map(|_| TdRow::new((0..arity).map(|_| Var::new(it.next().unwrap() % n_vars))))
                .collect();
            // Conclusion: per column, either an antecedent's var or fresh.
            let conclusion = TdRow::new((0..arity).map(|c| {
                let pick = it.next().unwrap();
                if pick % 4 == 0 {
                    Var::new(n_vars + 7) // fresh => existential
                } else {
                    antecedents[(pick as usize) % n_rows].get(AttrId::from(c))
                }
            }));
            Td::new(schema, antecedents, conclusion, "random").unwrap()
        })
}

/// Strategy: a random instance over `arity` columns.
fn arb_instance(arity: usize) -> impl Strategy<Value = Instance> {
    proptest::collection::vec(proptest::collection::vec(0..4u32, arity), 0..=8).prop_map(
        move |rows| {
            let mut inst = Instance::new(schema(arity));
            for row in rows {
                inst.insert_values(row).unwrap();
            }
            inst
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Diagram round-trip: a TD survives `from_td → to_td` up to renaming.
    #[test]
    fn diagram_roundtrip(td in arb_td(3)) {
        let back = Diagram::from_td(&td).to_td("back").unwrap();
        prop_assert!(td.eq_up_to_renaming(&back));
        prop_assert_eq!(td.is_full(), back.is_full());
        prop_assert_eq!(td.is_trivial(), back.is_trivial());
        prop_assert_eq!(td.existential_columns(), back.existential_columns());
    }

    /// Transitive closure of a diagram does not change its dependency.
    #[test]
    fn diagram_closure_stable(td in arb_td(3)) {
        let d = Diagram::from_td(&td);
        let closed = d.closure();
        let a = d.to_td("a").unwrap();
        let b = closed.to_td("b").unwrap();
        prop_assert!(a.eq_up_to_renaming(&b));
        // Closure is idempotent.
        prop_assert_eq!(closed.closure(), closed);
    }

    /// Variable normalization is idempotent and preserves shape.
    #[test]
    fn normalization_idempotent(td in arb_td(4)) {
        let n1 = td.normalized();
        let n2 = n1.normalized();
        prop_assert_eq!(&n1, &n2);
        prop_assert!(td.eq_up_to_renaming(&n1));
    }

    /// Satisfaction agrees between the tuple view and the partition view.
    #[test]
    fn satisfaction_agrees_across_views(td in arb_td(3), inst in arb_instance(3)) {
        let eq = EqInstance::from_instance(&inst);
        prop_assert_eq!(
            satisfaction::satisfies(&inst, &td),
            satisfaction::eq_satisfies(&eq, &td)
        );
    }

    /// Trivial TDs hold in every instance.
    #[test]
    fn trivial_tds_always_hold(td in arb_td(3), inst in arb_instance(3)) {
        if td.is_trivial() {
            prop_assert!(satisfaction::satisfies(&inst, &td));
        }
    }

    /// The partition view round-trips losslessly through the tuple view.
    #[test]
    fn eq_instance_roundtrip(inst in arb_instance(3)) {
        let eq = EqInstance::from_instance(&inst);
        let back = eq.to_instance();
        let eq2 = EqInstance::from_instance(&back);
        prop_assert_eq!(eq.len(), eq2.len());
        for c in (0..3usize).map(AttrId::from) {
            for i in 0..eq.len() {
                for j in 0..eq.len() {
                    let (ri, rj) = (i.into(), j.into());
                    prop_assert_eq!(eq.same(c, ri, rj), eq2.same(c, ri, rj));
                }
            }
        }
    }

    /// A terminated restricted chase yields a model of its dependencies,
    /// and its proof replays.
    #[test]
    fn chase_soundness(tds in proptest::collection::vec(arb_td(3), 1..3),
                       inst in arb_instance(3)) {
        let budget = ChaseBudget { max_steps: 200, max_rows: 300, max_rounds: 20 };
        let mut engine =
            ChaseEngine::new(&tds, inst.clone(), ChasePolicy::Restricted, budget).unwrap();
        let outcome = engine.run(None);
        let (state, proof) = engine.into_parts();
        if outcome == ChaseOutcome::Terminated {
            for td in &tds {
                prop_assert!(satisfaction::satisfies(&state, td), "model property");
            }
        }
        // Whatever happened, the proof log replays exactly.
        let replayed = proof.verify(&inst, &tds, None).unwrap();
        prop_assert_eq!(replayed, state);
    }

    /// Every dependency implies itself, with a verifiable proof.
    #[test]
    fn self_implication(td in arb_td(3)) {
        match inference::implies(std::slice::from_ref(&td), &td, ChaseBudget::default()).unwrap() {
            InferenceVerdict::Implied(proof) => {
                let (frozen, _, goal) = inference::freeze(&td).unwrap();
                proof.verify(&frozen, std::slice::from_ref(&td), Some(&goal)).unwrap();
            }
            other => prop_assert!(false, "expected Implied, got {other:?}"),
        }
    }

    /// Inference coherence: `NotImplied` countermodels really are
    /// countermodels; `Implied` proofs really replay.
    #[test]
    fn inference_verdicts_are_certified(
        premise in arb_td(3),
        goal in arb_td(3),
    ) {
        let budget = ChaseBudget { max_steps: 300, max_rows: 400, max_rounds: 12 };
        let d = vec![premise];
        match inference::implies(&d, &goal, budget).unwrap() {
            InferenceVerdict::Implied(proof) => {
                let (frozen, _, g) = inference::freeze(&goal).unwrap();
                proof.verify(&frozen, &d, Some(&g)).unwrap();
            }
            InferenceVerdict::NotImplied(model) => {
                prop_assert!(satisfaction::satisfies_all(&model, &d));
                prop_assert!(!satisfaction::satisfies(&model, &goal));
            }
            InferenceVerdict::Unknown(_) => {}
        }
    }

    /// Full dependencies always resolve (never Unknown), and the decision
    /// agrees with the general procedure.
    #[test]
    fn full_td_decision_total(arity in 2..4usize, seed in 0..500u64) {
        let (schema, family) = td_bench::full_td_family(arity);
        let goal = td_bench::random_td(&schema, 2, 2, 20, seed, "goal");
        let decided = inference::implies_full(&family, &goal).unwrap();
        match inference::implies(&family, &goal, ChaseBudget::unlimited()).unwrap() {
            InferenceVerdict::Implied(_) => prop_assert!(decided),
            InferenceVerdict::NotImplied(_) => prop_assert!(!decided),
            InferenceVerdict::Unknown(_) => prop_assert!(false, "full TDs terminate"),
        }
    }

    /// The bounded countermodel search never returns bogus models.
    #[test]
    fn countermodel_search_certified(premise in arb_td(2), goal in arb_td(2)) {
        let opts = SearchOptions { max_rows: 3, max_values_per_column: 3, max_candidates: 50_000 };
        let d = vec![premise];
        if let SearchOutcome::Found(model) = search_countermodel(&d, &goal, &opts) {
            prop_assert!(satisfaction::satisfies_all(&model, &d));
            prop_assert!(!satisfaction::satisfies(&model, &goal));
        }
    }

    /// TDs are preserved under direct products: if both components model
    /// the dependency, so does the product (the Horn-preservation theorem,
    /// exercised on random data).
    #[test]
    fn tds_preserved_under_products(
        td in arb_td(3),
        m in arb_instance(3),
        n in arb_instance(3),
    ) {
        use template_deps::td_core::product::direct_product;
        if m.is_empty() || n.is_empty() {
            return Ok(());
        }
        if satisfaction::satisfies(&m, &td) && satisfaction::satisfies(&n, &td) {
            let (p, _) = direct_product(&m, &n).unwrap();
            prop_assert!(
                satisfaction::satisfies(&p, &td),
                "product must remain a model"
            );
        }
    }

    /// Every canonical weakening of a random dependency is implied by it
    /// (soundness of the axioms module, cross-validated by the chase).
    #[test]
    fn weakenings_sound_on_random_tds(td in arb_td(3)) {
        use template_deps::td_core::axioms::{apply, canonical_weakenings};
        for w in canonical_weakenings(&td) {
            let weaker = apply(&td, &w).unwrap();
            let verdict = inference::implies(
                std::slice::from_ref(&td),
                &weaker,
                ChaseBudget::default(),
            )
            .unwrap();
            prop_assert!(verdict.is_implied(), "weakening {w:?} not implied");
        }
    }

    /// Subsumption is sound w.r.t. the chase on random pairs.
    #[test]
    fn subsumption_sound_on_random_pairs(a in arb_td(3), b in arb_td(3)) {
        use template_deps::td_core::axioms::subsumes;
        if subsumes(&a, &b).unwrap() {
            let verdict = inference::implies(
                std::slice::from_ref(&a),
                &b,
                ChaseBudget::default(),
            )
            .unwrap();
            prop_assert!(verdict.is_implied());
        }
    }

    /// Weak acyclicity guarantees termination: whenever the checker says
    /// yes, the restricted chase terminates within a generous budget.
    #[test]
    fn weak_acyclicity_guarantees_termination(
        tds in proptest::collection::vec(arb_td(3), 1..3),
        inst in arb_instance(3),
    ) {
        if td_core::chase::weakly_acyclic(&tds) && inst.len() <= 4 {
            let budget = ChaseBudget { max_steps: 100_000, max_rows: 100_000, max_rounds: 10_000 };
            let mut engine =
                ChaseEngine::new(&tds, inst, ChasePolicy::Restricted, budget).unwrap();
            prop_assert_eq!(engine.run(None), ChaseOutcome::Terminated);
        }
    }
}
