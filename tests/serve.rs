//! Integration tests for `tdq serve` — the long-lived NDJSON session
//! mode. The stdio transport is also pinned byte-for-byte by the golden
//! transcript test in `cli_golden.rs`; here the focus is behavior:
//! cross-request cache warmth, concurrent `--listen` clients sharing one
//! engine, stats visibility, and cancellation-clean shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tdq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdq"))
}

/// A wp request for one of two isomorphism classes, disguised per client
/// so the dedup visibly happens on canonical keys, not on input bytes.
fn wp_request(id: &str, client: usize, implied: bool) -> String {
    let (s, g, z) = (
        format!("s{client}"),
        format!("g{client}"),
        format!("z{client}"),
    );
    if implied {
        format!(
            "{{\"id\":\"{id}\",\"op\":\"wp\",\"alphabet\":[\"{s}\",\"{g}\",\"{z}\"],\
             \"a0\":\"{s}\",\"zero\":\"{z}\",\
             \"eqs\":[\"{g} {g} = {s}\",\"{g} {g} = {z}\"]}}"
        )
    } else {
        format!(
            "{{\"id\":\"{id}\",\"op\":\"wp\",\"alphabet\":[\"{s}\",\"{z}\"],\
             \"a0\":\"{s}\",\"zero\":\"{z}\",\"eqs\":[]}}"
        )
    }
}

/// Waits for the child to exit, killing it after a deadline so a broken
/// shutdown path fails the test instead of hanging CI.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            child.kill().ok();
            panic!("tdq serve did not exit within {deadline:?} after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn stdio_session_warms_cache_and_stops_at_shutdown() {
    let mut child = tdq()
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tdq serve --stdio");
    let mut stdin = child.stdin.take().expect("stdin");
    // The whole script up front: sequential processing replies in order,
    // and everything after `shutdown` must be ignored.
    let script = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        wp_request("a", 0, true),
        wp_request("b", 1, true),
        "{\"id\":\"s\",\"op\":\"stats\"}",
        "{\"id\":\"q\",\"op\":\"shutdown\"}",
        wp_request("never", 2, true),
    );
    stdin.write_all(script.as_bytes()).expect("write script");
    drop(stdin);

    let status = wait_with_deadline(&mut child, Duration::from_secs(60));
    assert!(status.success());
    let mut out = String::new();
    child
        .stdout
        .take()
        .expect("stdout")
        .read_to_string(&mut out)
        .expect("read stdout");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "no reply after shutdown:\n{out}");
    assert!(lines[0].contains("\"id\":\"a\"") && lines[0].contains("\"cached\":false"));
    assert!(
        lines[1].contains("\"id\":\"b\"") && lines[1].contains("\"cached\":true"),
        "renamed duplicate hits the warm cache: {}",
        lines[1]
    );
    assert_eq!(
        lines[2],
        "{\"id\":\"s\",\"ok\":true,\"op\":\"stats\",\"requests\":2,\"cache_hits\":1,\
         \"solved\":1,\"fastpath_hits\":0,\"keys_cached\":1,\"evictions\":0}"
    );
    assert_eq!(lines[3], "{\"id\":\"q\",\"ok\":true,\"op\":\"shutdown\"}");
}

/// The acceptance scenario: three concurrent clients against one
/// `serve --listen` engine — correct answers everywhere, cache hits from
/// one client's work visible to the others and in `stats`, and a clean
/// process exit on `shutdown`.
#[test]
fn three_concurrent_listen_clients_share_the_engine() {
    let mut child = tdq()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tdq serve --listen");
    // The ready line announces the bound address (port 0 ⇒ ephemeral).
    let mut server_out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut ready = String::new();
    server_out.read_line(&mut ready).expect("ready line");
    let addr = ready
        .trim()
        .strip_prefix("{\"serving\":\"")
        .and_then(|s| s.strip_suffix("\"}"))
        .unwrap_or_else(|| panic!("unexpected ready line: {ready:?}"))
        .to_owned();

    // Phase 1: three clients, each asking both isomorphism classes under
    // its own symbol names, concurrently.
    let replies: Vec<Vec<String>> = std::thread::scope(|s| {
        let addr = &addr;
        let handles: Vec<_> = (0..3)
            .map(|client| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut replies = Vec::new();
                    for (i, implied) in [(0, true), (1, false), (2, true)] {
                        let req = wp_request(&format!("c{client}-{i}"), client, implied);
                        writeln!(writer, "{req}").expect("send");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("reply");
                        replies.push(line.trim().to_owned());
                    }
                    replies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut solved_implied = 0;
    let mut hit_implied = 0;
    for (client, lines) in replies.iter().enumerate() {
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains("\"ok\":true"),
                "client {client} line {i}: {line}"
            );
            let expect_verdict = if i == 1 { "refuted" } else { "implied" };
            assert!(
                line.contains(&format!("\"verdict\":\"{expect_verdict}\"")),
                "client {client} line {i}: {line}"
            );
        }
        // Each client repeats the implied class (requests 0 and 2): the
        // second ask is a hit at the latest.
        assert!(
            lines[2].contains("\"cached\":true"),
            "client {client}: {:?}",
            lines[2]
        );
        solved_implied += usize::from(lines[0].contains("\"cached\":false"));
        hit_implied += usize::from(lines[0].contains("\"cached\":true"));
    }
    assert_eq!(solved_implied + hit_implied, 3);
    assert_eq!(
        solved_implied, 1,
        "single-flight: exactly one client solved the shared implied class"
    );

    // Phase 2: a fourth connection reads the cumulative stats and shuts
    // the server down.
    let stream = TcpStream::connect(&addr).expect("connect control");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(writer, "{{\"id\":\"st\",\"op\":\"stats\"}}").expect("send stats");
    let mut stats = String::new();
    reader.read_line(&mut stats).expect("stats reply");
    // 9 wp requests over 2 classes: 2 solves, 7 hits, all visible.
    assert!(
        stats.contains("\"requests\":9") && stats.contains("\"solved\":2"),
        "stats: {stats}"
    );
    assert!(stats.contains("\"cache_hits\":7"), "stats: {stats}");
    assert!(stats.contains("\"keys_cached\":2"), "stats: {stats}");

    writeln!(writer, "{{\"id\":\"bye\",\"op\":\"shutdown\"}}").expect("send shutdown");
    let mut bye = String::new();
    reader.read_line(&mut bye).expect("shutdown reply");
    assert_eq!(
        bye.trim(),
        "{\"id\":\"bye\",\"ok\":true,\"op\":\"shutdown\"}"
    );

    let status = wait_with_deadline(&mut child, Duration::from_secs(60));
    assert!(status.success(), "clean exit after shutdown");
}

#[test]
fn listen_clients_get_structured_errors_and_survive_them() {
    let mut child = tdq()
        .args(["serve", "--listen", "127.0.0.1:0", "--cache-cap", "8"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let mut server_out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut ready = String::new();
    server_out.read_line(&mut ready).expect("ready line");
    let addr = ready
        .trim()
        .strip_prefix("{\"serving\":\"")
        .and_then(|s| s.strip_suffix("\"}"))
        .expect("ready line")
        .to_owned();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |req: &str| -> String {
        writeln!(writer, "{req}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        line.trim().to_owned()
    };
    // A malformed line must produce an error envelope, not kill the
    // connection; the next request still works.
    let err = ask("this is not json");
    assert!(
        err.starts_with("{\"id\":null,\"ok\":false,\"error\":{\"msg\":"),
        "{err}"
    );
    assert!(err.contains("\"byte\":0"), "{err}");
    let ok = ask(&wp_request("after-error", 0, false));
    assert!(ok.contains("\"verdict\":\"refuted\""), "{ok}");
    // Batch over the protocol, with per-item ids defaulted.
    let batch = ask("{\"id\":\"b\",\"op\":\"batch\",\"items\":[\
         {\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]},\
         {\"alphabet\":[\"B\",\"z\"],\"a0\":\"B\",\"zero\":\"z\",\"eqs\":[]}]}");
    assert!(batch.contains("\"id\":\"item1\""), "{batch}");
    assert!(
        batch.contains("\"cache_hits\":2"),
        "warm from the wp above: {batch}"
    );
    assert!(batch.contains("\"evictions\":0"), "{batch}");

    let bye = ask("{\"id\":\"q\",\"op\":\"shutdown\"}");
    assert!(bye.contains("\"op\":\"shutdown\""));
    let status = wait_with_deadline(&mut child, Duration::from_secs(60));
    assert!(status.success());
}
