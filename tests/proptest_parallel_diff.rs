//! Differential property tests for the multicore solve paths.
//!
//! Parallel delta-trigger discovery and the portfolio runner are
//! performance machinery with a hard determinism contract: at any worker
//! width the chase must produce *exactly* the same verdicts, proofs, and
//! counters as the sequential oracle (candidate triggers are merged back
//! in sequential row-id order), and a portfolio replay must settle the
//! same way every time. These properties pit the parallel paths against
//! their sequential oracles on random inputs:
//!
//! * `implies_with` under `Parallelism::Threads(n)` is **structurally
//!   identical** (full `Debug` equality — proof firings, countermodels,
//!   budget counters) to `Parallelism::Off`, for every strategy;
//! * budget-truncated runs agree too (truncation is the subtle case: the
//!   parallel merge must stop at the same trigger the sequential visitor
//!   would have);
//! * the racing portfolio returns the **same certificate shape** on every
//!   replay of the same instance, and identical spent budgets whenever no
//!   cancellation fired (the double-exhaustion case).

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::homomorphism::MatchStrategy;
use template_deps::td_core::ids::{AttrId, Var};
use template_deps::td_core::inference::implies_with;
use template_deps::td_core::td::TdRow;
use template_deps::td_reduction::pipeline::{solve_with, PipelineOutcome, SolveMode};
use template_deps::td_semigroup::alphabet::Alphabet;
use template_deps::td_semigroup::derivation::SearchBudget;
use template_deps::td_semigroup::equation::Equation;
use template_deps::td_semigroup::model_search::ModelSearchOptions;
use template_deps::td_semigroup::presentation::Presentation;

fn schema(arity: usize) -> Schema {
    Schema::new("R", (0..arity).map(|i| format!("C{i}"))).unwrap()
}

/// Strategy: a random typed TD over `arity` columns (1–3 antecedent rows,
/// small per-column variable pools, existentials with probability 1/4).
fn arb_td(arity: usize) -> impl Strategy<Value = Td> {
    let rows = 1..=3usize;
    let vars = 1..=3u32;
    (
        rows,
        vars,
        proptest::collection::vec(0..100u32, arity * 4 + arity),
    )
        .prop_map(move |(n_rows, n_vars, picks)| {
            let schema = schema(arity);
            let mut it = picks.into_iter();
            let antecedents: Vec<TdRow> = (0..n_rows)
                .map(|_| TdRow::new((0..arity).map(|_| Var::new(it.next().unwrap() % n_vars))))
                .collect();
            let conclusion = TdRow::new((0..arity).map(|c| {
                let pick = it.next().unwrap();
                if pick % 4 == 0 {
                    Var::new(n_vars + 7) // fresh: existential
                } else {
                    antecedents[(pick as usize) % n_rows].get(AttrId::from(c))
                }
            }));
            Td::new(schema, antecedents, conclusion, "random").unwrap()
        })
}

/// Strategy: a random zero-saturated presentation over `A0`, `A1`, `0`:
/// up to three equations whose sides are words of length 1–2.
fn arb_presentation() -> impl Strategy<Value = Presentation> {
    proptest::collection::vec((0..7u32, 0..3u32), 0..=3).prop_map(|eqs| {
        let alphabet = Alphabet::standard(2);
        const WORDS: [&str; 7] = ["A0", "A1", "0", "A1 A1", "A0 A1", "A1 A0", "A1 0"];
        const SIDES: [&str; 3] = ["A0", "A1", "0"];
        let equations: Vec<Equation> = eqs
            .into_iter()
            .map(|(l, r)| {
                let text = format!("{} = {}", WORDS[l as usize], SIDES[r as usize]);
                Equation::parse(&text, &alphabet).unwrap()
            })
            .collect();
        let mut p = Presentation::new(alphabet, equations).unwrap();
        p.saturate_with_zero_equations();
        p
    })
}

/// Small budgets keep the random pipelines fast while still letting most
/// cases settle.
fn small_budgets() -> Budgets {
    Budgets {
        derivation: SearchBudget {
            max_word_len: 8,
            max_states: 20_000,
        },
        model: ModelSearchOptions {
            min_size: 2,
            max_size: 3,
            max_nodes: 200_000,
        },
        chase: ChaseBudget::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's safety net: parallel delta-trigger discovery is a
    /// drop-in for the sequential scan. Full structural (`Debug`)
    /// equality of the verdicts covers the firing sequence, the proof
    /// shape, the countermodel rows, and every budget counter at once.
    #[test]
    fn parallel_inference_is_structurally_identical_to_sequential(
        premises in proptest::collection::vec(arb_td(2), 1..=2),
        goal in arb_td(2),
        workers in 2..=5usize,
    ) {
        // Both matchers ride the same discovery loop; alternate so the
        // parallel scan is differentially tested under each.
        let strategy = if workers % 2 == 0 {
            MatchStrategy::Indexed
        } else {
            MatchStrategy::Naive
        };
        let seq = implies_with(
            &premises,
            &goal,
            ChaseBudget::default(),
            strategy,
            Parallelism::Off,
        )
        .unwrap();
        let par = implies_with(
            &premises,
            &goal,
            ChaseBudget::default(),
            strategy,
            Parallelism::Threads(workers),
        )
        .unwrap();
        prop_assert_eq!(
            format!("{seq:?}"),
            format!("{par:?}"),
            "Threads({}) diverged from sequential discovery",
            workers
        );
    }

    /// The truncation corner: with a starved step budget the parallel
    /// merge must cut off at exactly the trigger where the sequential
    /// visitor would have stopped — verdict, counters and partial proof
    /// state all included in the `Debug` comparison.
    #[test]
    fn truncated_parallel_inference_matches_sequential(
        premises in proptest::collection::vec(arb_td(2), 1..=2),
        goal in arb_td(2),
        workers in 2..=4usize,
    ) {
        let seq = implies_with(
            &premises,
            &goal,
            ChaseBudget::small(),
            MatchStrategy::Indexed,
            Parallelism::Off,
        )
        .unwrap();
        let par = implies_with(
            &premises,
            &goal,
            ChaseBudget::small(),
            MatchStrategy::Indexed,
            Parallelism::Threads(workers),
        )
        .unwrap();
        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    /// Portfolio determinism: replaying the race on the same instance
    /// settles the same way every time — same certificate shape, same
    /// derivation length / model size, and identical spent budgets in the
    /// double-exhaustion case (no certificate means no cancellation, so
    /// both lanes run to their budget rungs deterministically).
    #[test]
    fn portfolio_replays_settle_identically(p in arb_presentation()) {
        let budgets = small_budgets();
        let first = solve_with(&p, &budgets, SolveMode::Racing).unwrap();
        for _ in 0..2 {
            let again = solve_with(&p, &budgets, SolveMode::Racing).unwrap();
            match (&first.outcome, &again.outcome) {
                (
                    PipelineOutcome::Implied { derivation: d1, proof: p1 },
                    PipelineOutcome::Implied { derivation: d2, proof: p2 },
                ) => {
                    prop_assert_eq!(d1.len(), d2.len());
                    prop_assert_eq!(p1.proof.len(), p2.proof.len());
                }
                (
                    PipelineOutcome::Refuted { model: m1, .. },
                    PipelineOutcome::Refuted { model: m2, .. },
                ) => prop_assert_eq!(m1.len(), m2.len()),
                (
                    PipelineOutcome::FastSettled { verdict: v1 },
                    PipelineOutcome::FastSettled { verdict: v2 },
                ) => {
                    // The fast-path lane is deterministic down to the
                    // replayable reason, not just the verdict side.
                    prop_assert_eq!(v1, v2);
                    prop_assert_eq!(first.spend.lanes(), again.spend.lanes());
                }
                (
                    PipelineOutcome::Unknown { derivation_states: ds1, model_nodes: mn1 },
                    PipelineOutcome::Unknown { derivation_states: ds2, model_nodes: mn2 },
                ) => {
                    prop_assert_eq!(ds1, ds2);
                    prop_assert_eq!(mn1, mn2);
                    prop_assert_eq!(first.spend.lanes(), again.spend.lanes());
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "portfolio replay diverged: {a:?} vs {b:?}"
                    )));
                }
            }
        }
    }
}
