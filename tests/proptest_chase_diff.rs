//! Differential property tests for the indexed chase fast path.
//!
//! The indexed homomorphism planner ([`MatchStrategy::Indexed`]) and the
//! semi-naive chase engine are performance machinery; the naive matcher and
//! the sequential pipeline are kept precisely so these tests can pit the
//! optimized paths against the simple oracles on random inputs:
//!
//! * indexed and naive matching enumerate **identical trigger sets**;
//! * restricted-chase implication verdicts **never conflict** between the
//!   two strategies (`Implied` under one and `NotImplied` under the other
//!   would be a soundness bug, not a budget artifact);
//! * the sequential and raced pipelines return the **same verdict** (and
//!   the same spent budgets when both sides exhaust, since a cancellation
//!   can only happen after a certificate was found).

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::homomorphism::{match_all_with, MatchStrategy};
use template_deps::td_core::ids::{AttrId, Var};
use template_deps::td_core::inference::{implies_with_strategy, InferenceVerdict};
use template_deps::td_core::td::TdRow;
use template_deps::td_reduction::pipeline::{solve_with, PipelineOutcome, SolveMode};
use template_deps::td_semigroup::alphabet::Alphabet;
use template_deps::td_semigroup::derivation::SearchBudget;
use template_deps::td_semigroup::equation::Equation;
use template_deps::td_semigroup::model_search::ModelSearchOptions;
use template_deps::td_semigroup::presentation::Presentation;

fn schema(arity: usize) -> Schema {
    Schema::new("R", (0..arity).map(|i| format!("C{i}"))).unwrap()
}

/// Strategy: a random typed TD over `arity` columns (1–3 antecedent rows,
/// small per-column variable pools, existentials with probability 1/4).
fn arb_td(arity: usize) -> impl Strategy<Value = Td> {
    let rows = 1..=3usize;
    let vars = 1..=3u32;
    (
        rows,
        vars,
        proptest::collection::vec(0..100u32, arity * 4 + arity),
    )
        .prop_map(move |(n_rows, n_vars, picks)| {
            let schema = schema(arity);
            let mut it = picks.into_iter();
            let antecedents: Vec<TdRow> = (0..n_rows)
                .map(|_| TdRow::new((0..arity).map(|_| Var::new(it.next().unwrap() % n_vars))))
                .collect();
            let conclusion = TdRow::new((0..arity).map(|c| {
                let pick = it.next().unwrap();
                if pick % 4 == 0 {
                    Var::new(n_vars + 7) // fresh: existential
                } else {
                    antecedents[(pick as usize) % n_rows].get(AttrId::from(c))
                }
            }));
            Td::new(schema, antecedents, conclusion, "random").unwrap()
        })
}

/// Strategy: a random instance over `arity` columns (0–8 rows, values 0–3).
fn arb_instance(arity: usize) -> impl Strategy<Value = Instance> {
    proptest::collection::vec(proptest::collection::vec(0..4u32, arity), 0..=8).prop_map(
        move |rows| {
            let mut inst = Instance::new(schema(arity));
            for row in rows {
                inst.insert_values(row).unwrap();
            }
            inst
        },
    )
}

/// Strategy: a random zero-saturated presentation over `A0`, `A1`, `0`:
/// up to three equations whose sides are words of length 1–2.
fn arb_presentation() -> impl Strategy<Value = Presentation> {
    proptest::collection::vec((0..7u32, 0..3u32), 0..=3).prop_map(|eqs| {
        let alphabet = Alphabet::standard(2);
        const WORDS: [&str; 7] = ["A0", "A1", "0", "A1 A1", "A0 A1", "A1 A0", "A1 0"];
        const SIDES: [&str; 3] = ["A0", "A1", "0"];
        let equations: Vec<Equation> = eqs
            .into_iter()
            .map(|(l, r)| {
                let text = format!("{} = {}", WORDS[l as usize], SIDES[r as usize]);
                Equation::parse(&text, &alphabet).unwrap()
            })
            .collect();
        let mut p = Presentation::new(alphabet, equations).unwrap();
        p.saturate_with_zero_equations();
        p
    })
}

/// Sorted, deduplicated dump of a match set for set comparison.
fn dump(ms: &[template_deps::td_core::homomorphism::Binding]) -> Vec<Vec<(AttrId, Var, Value)>> {
    let mut v: Vec<_> = ms.iter().map(|b| b.to_sorted_vec()).collect();
    v.sort();
    v
}

/// Small budgets keep the random pipelines fast while still letting most
/// cases settle.
fn small_budgets() -> Budgets {
    Budgets {
        derivation: SearchBudget {
            max_word_len: 8,
            max_states: 20_000,
        },
        model: ModelSearchOptions {
            min_size: 2,
            max_size: 3,
            max_nodes: 200_000,
        },
        chase: ChaseBudget::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's safety net: on random (TD, instance) pairs, the
    /// indexed planner and the naive scan enumerate exactly the same
    /// multiset of antecedent matches (the chase's trigger set).
    #[test]
    fn trigger_sets_identical_across_strategies(
        td in arb_td(3),
        inst in arb_instance(3),
    ) {
        let seed = template_deps::td_core::homomorphism::Binding::new(td.arity());
        let naive =
            match_all_with(MatchStrategy::Naive, td.antecedents(), &inst, &seed, usize::MAX);
        let indexed =
            match_all_with(MatchStrategy::Indexed, td.antecedents(), &inst, &seed, usize::MAX);
        prop_assert_eq!(naive.len(), indexed.len());
        prop_assert_eq!(dump(&naive), dump(&indexed));
    }

    /// Conclusion-witness checks also ride on the matcher: satisfaction of
    /// a random TD must not depend on the strategy (checked through the
    /// public API, which uses the indexed default, against a hand-rolled
    /// naive violation scan).
    #[test]
    fn satisfaction_agrees_with_naive_violation_scan(
        td in arb_td(2),
        inst in arb_instance(2),
    ) {
        use std::ops::ControlFlow;
        use template_deps::td_core::homomorphism::{for_each_match_with, match_first, Binding};
        let mut naive_violation = false;
        for_each_match_with(
            MatchStrategy::Naive,
            td.antecedents(),
            &inst,
            &Binding::new(td.arity()),
            |b| {
                let witnessed =
                    match_first(std::slice::from_ref(td.conclusion()), &inst, b).is_some();
                if witnessed {
                    ControlFlow::Continue(())
                } else {
                    naive_violation = true;
                    ControlFlow::Break(())
                }
            },
        );
        prop_assert_eq!(satisfies(&inst, &td), !naive_violation);
    }

    /// Restricted-chase implication verdicts never conflict between the
    /// strategies. Budget-bounded runs may disagree on *Unknown* at the
    /// margin (firing order differs), but a certified `Implied` on one side
    /// and a certified `NotImplied` on the other is impossible if both
    /// matchers are sound and complete.
    #[test]
    fn implication_verdicts_agree_across_strategies(
        premises in proptest::collection::vec(arb_td(2), 1..=2),
        goal in arb_td(2),
    ) {
        let naive =
            implies_with_strategy(&premises, &goal, ChaseBudget::small(), MatchStrategy::Naive)
                .unwrap();
        let indexed =
            implies_with_strategy(&premises, &goal, ChaseBudget::small(), MatchStrategy::Indexed)
                .unwrap();
        let conflict = matches!(
            (&naive, &indexed),
            (InferenceVerdict::Implied(_), InferenceVerdict::NotImplied(_))
                | (InferenceVerdict::NotImplied(_), InferenceVerdict::Implied(_))
        );
        prop_assert!(
            !conflict,
            "strategies certify opposite verdicts: naive {:?} vs indexed {:?}",
            naive,
            indexed
        );
        // When both settle, the verdict kind must be identical.
        if !naive.is_unknown() && !indexed.is_unknown() {
            prop_assert_eq!(naive.is_implied(), indexed.is_implied());
        }
    }

    /// The raced pipeline returns the same verdict as the sequential one on
    /// random word-problem instances — and identical spent budgets when
    /// both sides exhaust (no certificate means no cancellation).
    #[test]
    fn sequential_and_raced_pipelines_agree(p in arb_presentation()) {
        let budgets = small_budgets();
        let seq = solve_with(&p, &budgets, SolveMode::Sequential).unwrap();
        let raced = solve_with(&p, &budgets, SolveMode::Racing).unwrap();
        match (&seq.outcome, &raced.outcome) {
            // The raced side may fast-settle (`FastSettled`) where the
            // sequential oracle produced a full certificate — same verdict,
            // cheaper evidence. `is_implied`/`is_refuted` cover both.
            (s, r) if s.is_implied() && r.is_implied() => {}
            (s, r) if s.is_refuted() && r.is_refuted() => {}
            (
                PipelineOutcome::Unknown {
                    derivation_states: ds,
                    model_nodes: mn,
                },
                PipelineOutcome::Unknown {
                    derivation_states: dr,
                    model_nodes: mr,
                },
            ) => {
                prop_assert_eq!(ds, dr);
                prop_assert_eq!(mn, mr);
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "modes disagree: sequential {a:?} vs raced {b:?}"
                )));
            }
        }
    }
}
