//! Integration tests for the `tdq` command-line tool.

use std::io::Write;
use std::process::Command;

fn tdq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tdq"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("tdq-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn help_and_usage() {
    let out = tdq().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = tdq().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = tdq().args(["bogus", "x"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn wp_implied() {
    let path = write_temp(
        "wp-implied",
        "alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n",
    );
    let out = tdq().arg("wp").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("IMPLIED"), "{stdout}");
    assert!(stdout.contains("chase proof"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn wp_refuted() {
    // The empty presentation is settled by the fast-path refutation probe
    // before the model search starts; the reason names the probe instance.
    let path = write_temp("wp-refuted", "alphabet A0 0\nzerosat\n");
    let out = tdq().arg("wp").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("REFUTED"), "{stdout}");
    assert!(stdout.contains("fastpath: probe template"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn deps_analysis() {
    let path = write_temp(
        "deps",
        "schema R(A, B, C)\n\
         td join: (a, b, c) (a, b2, c2) -> (a, b, c2)\n\
         td weak: (a, b, c) (a, b2, c2) -> (*, b, c2)\n\
         row (x, y, z)\n",
    );
    let out = tdq().arg("deps").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("redundancy:"), "{stdout}");
    assert!(stdout.contains("weak: redundant"), "{stdout}");
    assert!(stdout.contains("join: essential"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn normalize_prints_fresh_symbols() {
    let path = write_temp("norm", "alphabet A0 B C D 0\neq B C D = A0\n");
    let out = tdq().arg("normalize").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("[BC]"), "{stdout}");
    assert!(stdout.contains("fresh symbols:"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn reduce_prints_dependencies_and_dot() {
    let path = write_temp("reduce", "alphabet A0 0\nzerosat\n");
    let out = tdq().arg("reduce").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("D1("), "{stdout}");
    assert!(stdout.contains("D0:"), "{stdout}");
    assert!(stdout.contains("graph \"D0\""), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn timings_flag_prints_phase_breakdown() {
    let path = write_temp("wp-timings", "alphabet A0 0\nzerosat\n");
    let out = tdq().args(["wp", "--timings"]).arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("timings: normalize "), "{stdout}");
    assert!(stdout.contains("derivation "), "{stdout}");
    assert!(stdout.contains("model "), "{stdout}");
    // Without the flag, no timings line (golden files depend on this).
    let out = tdq().arg("wp").arg(&path).output().unwrap();
    assert!(!String::from_utf8_lossy(&out.stdout).contains("timings:"));

    let deps = write_temp("deps-timings", "schema R(A, B)\ntd t: (a, b) -> (a, b)\n");
    let out = tdq()
        .args(["deps", "--timings"])
        .arg(&deps)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("timings: parse "), "{stdout}");

    // Commands without a timings phase reject the flag instead of
    // silently ignoring it.
    let out = tdq()
        .args(["normalize", "--timings"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--timings is not supported"));
    std::fs::remove_file(path).ok();
    std::fs::remove_file(deps).ok();
}

#[test]
fn strategy_flag_is_accepted_and_validated() {
    let path = write_temp(
        "wp-strategy",
        "alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n",
    );
    // Both strategies answer identically (the differential claim, end to
    // end through the CLI).
    let indexed = tdq()
        .args(["wp", "--strategy", "indexed"])
        .arg(&path)
        .output()
        .unwrap();
    let naive = tdq()
        .args(["wp", "--strategy", "naive"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(indexed.status.success());
    assert!(naive.status.success());
    assert_eq!(indexed.stdout, naive.stdout);
    // Bogus values and unsupported subcommands are rejected.
    let out = tdq()
        .args(["wp", "--strategy", "bogus"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--strategy"));
    let out = tdq()
        .args(["normalize", "--strategy", "naive"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_reports_every_bad_line_with_line_numbers() {
    let path = write_temp(
        "batch-bad",
        concat!(
            "{\"id\":\"ok\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]}\n",
            "\n",
            "{\"id\":\"trailing\",\"alphabet\":[\"A0\",\"0\"],\"eqs\":[]} garbage\n",
            "not json at all\n",
        ),
    );
    let out = tdq().arg("batch").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 invalid corpus line(s)"), "{stderr}");
    // 1-based line numbers (the blank line counts), byte positions kept.
    assert!(stderr.contains("line 3:"), "{stderr}");
    assert!(stderr.contains("trailing garbage"), "{stderr}");
    assert!(stderr.contains("line 4:"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn format_json_emits_serve_schema_replies() {
    let path = write_temp(
        "wp-json",
        "alphabet A0 A1 0\neq A1 A1 = A0\neq A1 A1 = 0\nzerosat\n",
    );
    let out = tdq()
        .args(["wp", "--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.starts_with("{\"id\":null,\"ok\":true,\"op\":\"wp\",\"verdict\":\"implied\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"spend\":{\"fastpath_checks\":"),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"timings\":{\"normalize_us\":"),
        "{stdout}"
    );

    let deps = write_temp(
        "deps-json",
        "schema R(A, B, C)\n\
         td join: (a, b, c) (a, b2, c2) -> (a, b, c2)\n\
         td weak: (a, b, c) (a, b2, c2) -> (*, b, c2)\n",
    );
    let out = tdq()
        .args(["deps", "--format", "json"])
        .arg(&deps)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"op\":\"deps\""), "{stdout}");
    assert!(stdout.contains("\"redundancy\":\"redundant\""), "{stdout}");
    assert!(stdout.contains("\"timings\":{\"parse_us\":"), "{stdout}");
    std::fs::remove_file(path).ok();
    std::fs::remove_file(deps).ok();
}

#[test]
fn format_json_validation_errors_use_the_envelope() {
    // A parse failure still exits nonzero, but stdout carries the
    // machine-readable error envelope (scripts never scrape stderr).
    let path = write_temp("wp-json-bad", "alphabet A0 0\neq A0 = NOPE\n");
    let out = tdq()
        .args(["wp", "--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"id\":null,\"ok\":false,\"error\":{\"msg\":"),
        "{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn format_flag_is_validated() {
    let path = write_temp("wp-format", "alphabet A0 0\nzerosat\n");
    let out = tdq()
        .args(["wp", "--format", "yaml"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--format"),
        "bad value rejected"
    );
    let out = tdq()
        .args(["normalize", "--format", "json"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format is not supported"));
    std::fs::remove_file(path).ok();
}

#[test]
fn batch_and_serve_validate_cache_cap() {
    let out = tdq()
        .args(["batch", "--cache-cap", "lots", "whatever.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cache-cap"));
    let out = tdq().args(["serve", "--cache-cap", "8"]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--stdio or --listen"),
        "serve needs a transport"
    );
    let out = tdq()
        .args(["serve", "--stdio", "--listen", "127.0.0.1:0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "transports are mutually exclusive");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = tdq()
        .args(["wp", "/nonexistent/really-not-here.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn parse_errors_are_reported() {
    let path = write_temp("bad", "alphabet A0 0\neq A0 = NOPE\n");
    let out = tdq().arg("wp").arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    std::fs::remove_file(path).ok();
}
