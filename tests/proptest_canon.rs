//! Property tests for the canonicalization layer (`td_core::canon`): the
//! key must be a complete isomorphism invariant — equal for every renamed
//! and row-permuted copy of a TD, and (checked against the brute-force
//! permutation oracle) equal *only* for isomorphic pairs.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::canon::{canon_form, isomorphic};
use template_deps::td_core::ids::{AttrId, Var};
use template_deps::td_core::td::TdRow;

fn schema(arity: usize) -> Schema {
    Schema::new("R", (0..arity).map(|i| format!("C{i}"))).unwrap()
}

/// Strategy: a random typed TD over `arity` columns with up to 4 rows
/// (small enough for the factorial oracle).
fn arb_td(arity: usize) -> impl Strategy<Value = Td> {
    let rows = 1..=4usize;
    let vars = 1..=3u32;
    (
        rows,
        vars,
        proptest::collection::vec(0..100u32, arity * 5 + arity),
    )
        .prop_map(move |(n_rows, n_vars, picks)| {
            let mut it = picks.into_iter();
            let antecedents: Vec<TdRow> = (0..n_rows)
                .map(|_| TdRow::new((0..arity).map(|_| Var::new(it.next().unwrap() % n_vars))))
                .collect();
            let conclusion = TdRow::new((0..arity).map(|c| {
                let pick = it.next().unwrap();
                if pick % 4 == 0 {
                    Var::new(n_vars + 7) // fresh => existential
                } else {
                    antecedents[(pick as usize) % n_rows].get(AttrId::from(c))
                }
            }));
            Td::new(schema(arity), antecedents, conclusion, "random").unwrap()
        })
}

/// Applies a deterministic "random-looking" per-column variable renaming
/// (an injective map derived from `salt`) and a row rotation+swap derived
/// from `perm_seed` — a nontrivial isomorphism of `td`.
fn scramble(td: &Td, salt: u32, perm_seed: usize) -> Td {
    // Injective per-column renaming: v ↦ (a*v + b) with odd multiplier a
    // (invertible mod 2^32), different per column.
    let rename = |col: usize, v: Var| -> Var {
        let a = 2 * ((salt as u64 + col as u64 * 7) % 1000) + 1;
        let b = (salt as u64 * 31 + col as u64 * 13) % 10_000;
        Var::new(((v.raw() as u64 * a + b) % u32::MAX as u64) as u32)
    };
    let map_row = |row: &TdRow| TdRow::new(row.components().map(|(c, v)| rename(c.index(), v)));
    let mut antecedents: Vec<TdRow> = td.antecedents().iter().map(map_row).collect();
    let n = antecedents.len();
    antecedents.rotate_left(perm_seed % n.max(1));
    if n >= 2 {
        antecedents.swap(perm_seed % n, (perm_seed / 3) % n);
    }
    Td::new(
        td.schema().clone(),
        antecedents,
        map_row(td.conclusion()),
        "scrambled",
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Renaming + row permutation never changes the key; the brute-force
    /// oracle confirms the copies are isomorphic.
    #[test]
    fn key_invariant_under_isomorphism(
        td in arb_td(3),
        salt in 1..5000u32,
        perm in 0..24usize,
    ) {
        let copy = scramble(&td, salt, perm);
        prop_assert!(isomorphic(&td, &copy));
        prop_assert_eq!(canon_key(&td), canon_key(&copy));
    }

    /// On arbitrary pairs, key equality coincides exactly with the
    /// brute-force isomorphism oracle (no false merges, no false splits).
    #[test]
    fn key_equality_matches_oracle(a in arb_td(2), b in arb_td(2)) {
        prop_assert_eq!(canon_key(&a) == canon_key(&b), isomorphic(&a, &b));
    }

    /// The canonical form is a genuine normal form: isomorphic to its
    /// input, a fixpoint of canonicalization, and literally identical
    /// across isomorphic copies.
    #[test]
    fn canon_form_is_a_normal_form(td in arb_td(3), salt in 1..5000u32, perm in 0..24usize) {
        let cf = canon_form(&td);
        prop_assert!(isomorphic(&td, &cf));
        let cf2 = canon_form(&cf);
        prop_assert_eq!(cf.antecedents(), cf2.antecedents());
        prop_assert_eq!(cf.conclusion(), cf2.conclusion());
        let cf_copy = canon_form(&scramble(&td, salt, perm));
        prop_assert_eq!(cf.antecedents(), cf_copy.antecedents());
        prop_assert_eq!(cf.conclusion(), cf_copy.conclusion());
    }

    /// The system key dedups whole implication instances: invariant under
    /// premise reordering and member-wise scrambling, sensitive to the
    /// goal.
    #[test]
    fn system_key_invariance(
        d1 in arb_td(3),
        d2 in arb_td(3),
        goal in arb_td(3),
        salt in 1..5000u32,
    ) {
        let k = system_key(&[d1.clone(), d2.clone()], &goal);
        let scrambled = vec![scramble(&d2, salt, 1), scramble(&d1, salt + 1, 2)];
        prop_assert_eq!(system_key(&scrambled, &scramble(&goal, salt + 2, 0)), k);
    }
}

/// Deterministic adversarial pairs: same color-refinement signature,
/// different structure — only the individualization branching can split
/// them (mirrors the unit tests in `td_core::canon`, here through the
/// public facade and with a third shape).
#[test]
fn adversarial_cycle_families() {
    let schema2 = schema(2);
    // Bipartite cycles over rows-as-edges: `halves` lists the number of
    // variable pairs per cycle component.
    let cycles = |halves: &[u32], name: &str| {
        let mut rows = Vec::new();
        let (mut a_base, mut b_base) = (0u32, 0u32);
        for &half in halves {
            for i in 0..half {
                rows.push(TdRow::from_raw([a_base + i, b_base + i]));
                rows.push(TdRow::from_raw([a_base + (i + 1) % half, b_base + i]));
            }
            a_base += half;
            b_base += half;
        }
        let concl = TdRow::from_raw([a_base + 50, b_base + 50]);
        Td::new(schema2.clone(), rows, concl, name).unwrap()
    };
    let twelve = cycles(&[6], "one-12-cycle");
    let six_six = cycles(&[3, 3], "two-6-cycles");
    let four_eight = cycles(&[2, 4], "4+8-cycles");
    // All three have 12 rows, 6+6 degree-2 variables, and a uniform
    // refinement signature.
    for td in [&twelve, &six_six, &four_eight] {
        assert_eq!(td.antecedent_count(), 12);
    }
    assert_ne!(canon_key(&twelve), canon_key(&six_six));
    assert_ne!(canon_key(&twelve), canon_key(&four_eight));
    assert_ne!(canon_key(&six_six), canon_key(&four_eight));
    // Scrambled copies still collide with their own family only.
    let mut rows = six_six.antecedents().to_vec();
    rows.rotate_left(5);
    rows.swap(1, 9);
    let shuffled = Td::new(schema2, rows, six_six.conclusion().clone(), "shuffled").unwrap();
    assert_eq!(canon_key(&six_six), canon_key(&shuffled));
}
