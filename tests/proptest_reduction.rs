//! Property-based tests for the reduction: structural invariants of the
//! generated dependencies, bridge algebra, and certified pipeline verdicts
//! on randomized instances.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::eq_instance::EqInstance;
use template_deps::td_core::satisfaction;
use template_deps::td_reduction::deps::{
    build_d0, build_d1, build_d2, build_d3, build_d4, build_d_identify,
};
use template_deps::td_reduction::verify::structural_report;
use template_deps::td_semigroup::symbol::Sym;

/// Strategy: an alphabet with `2..=4` regular symbols plus the zero.
fn arb_alphabet() -> impl Strategy<Value = Alphabet> {
    (2..=4usize).prop_map(Alphabet::standard)
}

/// Strategy: `(alphabet, rule)` with random symbols.
fn arb_rule() -> impl Strategy<Value = (Alphabet, Rule2)> {
    arb_alphabet().prop_flat_map(|alphabet| {
        let n = alphabet.len() as u16;
        (Just(alphabet), 0..n, 0..n, 0..n).prop_map(|(alphabet, a, b, c)| {
            (
                alphabet,
                Rule2 {
                    a: Sym::new(a),
                    b: Sym::new(b),
                    c: Sym::new(c),
                },
            )
        })
    })
}

/// Strategy: a refutable presentation — random equations of the shape
/// `x y = 0` (always satisfied by null semigroups with `A0 ↦ a`).
fn arb_refutable() -> impl Strategy<Value = Presentation> {
    arb_alphabet().prop_flat_map(|alphabet| {
        let n = alphabet.len() as u16;
        let zero = alphabet.zero();
        proptest::collection::vec((0..n, 0..n), 0..4).prop_map(move |pairs| {
            let eqs = pairs
                .into_iter()
                .map(|(a, b)| {
                    Equation::new(
                        Word::new([Sym::new(a), Sym::new(b)]).unwrap(),
                        Word::single(zero),
                    )
                })
                .collect();
            let mut p = Presentation::new(alphabet.clone(), eqs).unwrap();
            p.saturate_with_zero_equations();
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated dependency family has the paper's shape, for every
    /// rule over every alphabet.
    #[test]
    fn dependency_shapes((alphabet, r) in arb_rule()) {
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        let d1 = build_d1(&attrs, r).unwrap();
        let d2 = build_d2(&attrs, r).unwrap();
        let d3 = build_d3(&attrs, r).unwrap();
        let d4 = build_d4(&attrs, r).unwrap();
        let d0 = build_d0(&attrs).unwrap();
        prop_assert_eq!(d1.antecedent_count(), 5);
        prop_assert_eq!(d2.antecedent_count(), 3);
        prop_assert_eq!(d3.antecedent_count(), 3);
        prop_assert_eq!(d4.antecedent_count(), 5);
        prop_assert_eq!(d0.antecedent_count(), 3);
        for td in [&d1, &d2, &d3, &d4, &d0] {
            prop_assert_eq!(td.arity(), 2 * alphabet.len() + 2);
            prop_assert!(td.is_embedded());
            // Diagram round-trip stability.
            let back = Diagram::from_td(td).to_td("back").unwrap();
            prop_assert!(td.eq_up_to_renaming(&back));
        }
        // D1 and D4 are never trivial regardless of symbol coincidences.
        prop_assert!(!d1.is_trivial());
        prop_assert!(!d4.is_trivial());
        // D2/D3 triviality is exactly characterized.
        prop_assert_eq!(d2.is_trivial(), r.a == r.c);
        prop_assert_eq!(d3.is_trivial(), r.b == r.c);
    }

    /// Identify dependencies relabel triangles; trivial iff `a == b`.
    #[test]
    fn identify_shapes(alphabet in arb_alphabet(), a in 0..3u16, b in 0..3u16) {
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        let (a, b) = (Sym::new(a), Sym::new(b));
        let d = build_d_identify(&attrs, a, b, "D5").unwrap();
        prop_assert_eq!(d.antecedent_count(), 3);
        prop_assert_eq!(d.is_trivial(), a == b);
    }

    /// Bridges validate for arbitrary words and are robust to neighbours.
    #[test]
    fn bridges_validate(alphabet in arb_alphabet(), raw in proptest::collection::vec(0..3u16, 1..7)) {
        let attrs = ReductionAttrs::new(&alphabet).unwrap();
        let word = Word::from_raw(raw).unwrap();
        let mut eq = EqInstance::new(attrs.schema().clone(), 0);
        let b1 = Bridge::build(&mut eq, &attrs, &word).unwrap();
        let b2 = Bridge::build(&mut eq, &attrs, &word).unwrap();
        b1.validate(&eq, &attrs).unwrap();
        b2.validate(&eq, &attrs).unwrap();
        prop_assert_eq!(eq.len(), 2 * (2 * word.len() + 1));
        // The two bridges do not interfere.
        prop_assert!(!eq.same(attrs.e(), b1.base()[0], b2.base()[0]));
    }

    /// Pipeline verdicts on randomized refutable instances are certified:
    /// the countermodel satisfies all of D, violates D0, and passes the
    /// Facts.
    #[test]
    fn refutable_instances_certified(p in arb_refutable()) {
        let run = solve(&p, &Budgets::default()).unwrap();
        match &run.outcome {
            PipelineOutcome::Refuted { model, report } => {
                prop_assert!(report.ok(), "{:?}", report);
                prop_assert!(satisfaction::satisfies_all(&model.instance, &run.system.deps));
                prop_assert!(!satisfaction::satisfies(&model.instance, &run.system.d0));
            }
            PipelineOutcome::FastSettled { verdict } => {
                // The fast path may refute these before the model search
                // starts; its reason must replay (the probe instance
                // satisfies D and violates D0 — the same certificate
                // property, checked on the probe instead of part (B)).
                prop_assert!(!verdict.is_implied(), "x·y = 0 equations cannot derive A0 = 0");
                prop_assert!(replay(&run.system, verdict).unwrap());
            }
            PipelineOutcome::Implied { .. } => {
                // Possible: e.g. the random equation `A0 X = 0` combined
                // with others could make the goal derivable? x·y = 0 alone
                // never rewrites the single-letter word A0, so Implied
                // would indicate a bug.
                prop_assert!(false, "x·y = 0 equations cannot derive A0 = 0");
            }
            PipelineOutcome::Unknown { .. } => {
                // Tolerated (budget), though it should not happen for the
                // null-model family.
                prop_assert!(false, "the null counter-model should always apply");
            }
        }
    }

    /// Part (A) proofs scale exactly with the derivation on the relabel
    /// chain, and every certificate verifies.
    #[test]
    fn relabel_chain_certified(k in 1..6usize) {
        let p = td_bench::relabel_chain(k);
        let run = solve(&p, &Budgets::default()).unwrap();
        let PipelineOutcome::Implied { derivation, proof } = &run.outcome else {
            return Err(TestCaseError::fail("must be implied"));
        };
        prop_assert_eq!(derivation.len(), k + 1);
        prop_assert_eq!(proof.proof.len(), k + 1);
        proof.verify(&run.system).unwrap();
        prop_assert!(structural_report(&run.system).ok());
    }

    /// Same for the product chain (expansions cost 3 firings each).
    #[test]
    fn product_chain_certified(k in 1..5usize) {
        let p = td_bench::product_chain(k);
        let mut budgets = Budgets::default();
        budgets.derivation.max_word_len = k + 2;
        let run = solve(&p, &budgets).unwrap();
        let PipelineOutcome::Implied { derivation, proof } = &run.outcome else {
            return Err(TestCaseError::fail("must be implied"));
        };
        prop_assert_eq!(derivation.len(), 2 * k);
        prop_assert_eq!(proof.proof.len(), 4 * k);
        proof.verify(&run.system).unwrap();
    }

    /// Derivability is monotone in the equation set: adding arbitrary extra
    /// `(2,1)` equations to a derivable instance keeps it derivable, and
    /// the pipeline still produces verified certificates.
    #[test]
    fn derivable_plus_junk_stays_certified(
        k in 1..4usize,
        junk in proptest::collection::vec((0..4u16, 0..4u16, 0..4u16), 0..3),
    ) {
        let mut p = td_bench::product_chain(k);
        // Alphabet: A0, X, Y1..Yk, 0 — junk equations over its symbols.
        let n = p.alphabet().len() as u16;
        for (a, b, c) in junk {
            let eq = Equation::new(
                Word::new([Sym::new(a % n), Sym::new(b % n)]).unwrap(),
                Word::single(Sym::new(c % n)),
            );
            p.push_equation(eq).unwrap();
        }
        let mut budgets = Budgets::default();
        budgets.derivation.max_word_len = k + 2;
        let run = solve(&p, &budgets).unwrap();
        let PipelineOutcome::Implied { derivation, proof } = &run.outcome else {
            return Err(TestCaseError::fail("monotonicity: must stay implied"));
        };
        // The found derivation may differ from the canonical one (junk can
        // create shortcuts) but must replay, and the proof must verify.
        let g = run.normalized.presentation.goal();
        derivation.verify(&run.normalized.presentation, &g.lhs, &g.rhs).unwrap();
        proof.verify(&run.system).unwrap();
    }

    /// Part (B) countermodels built from nilpotent semigroups of any order
    /// verify, and their P/Q split matches the labels.
    #[test]
    fn nilpotent_counter_models_certified(n in 2..7usize, n_regular in 1..3usize) {
        let p = td_bench::refutable_with_symbols(n_regular);
        let system = build_system(&p).unwrap();
        let g = cyclic_nilpotent(n);
        // A0 -> a, all other regular symbols -> a as well, 0 -> 0.
        let interp = Interpretation::from_raw(
            (0..p.alphabet().len()).map(|i| {
                if Sym::from(i) == p.alphabet().zero() { 0 } else { 1 }
            }),
        );
        let model = build_counter_model(&system, &p, &g, &interp).unwrap();
        let report = verify_counter_model(&system, &model);
        prop_assert!(report.ok(), "n={n}: {:?}", report);
        // |Q| rows each belong to exactly one nontrivial A'-class.
        prop_assert!(model.p_rows().count() >= 2);
    }
}
