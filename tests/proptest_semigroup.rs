//! Property-based tests for the semigroup layer: word algebra, derivation
//! certificates, quotient/BFS agreement, families, adjunction, evaluation.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_semigroup::derivation::search_goal_derivation;
use template_deps::td_semigroup::model_search::ModelSearchResult;
use template_deps::td_semigroup::properties;
use template_deps::td_semigroup::quotient::BoundedQuotient;
use template_deps::td_semigroup::rewrite::RewriteSystem;
use template_deps::td_semigroup::symbol::Sym;

/// Strategy: a word over `n_syms` symbols, length `1..=max_len`.
fn arb_word(n_syms: u16, max_len: usize) -> impl Strategy<Value = Word> {
    proptest::collection::vec(0..n_syms, 1..=max_len).prop_map(|syms| Word::from_raw(syms).unwrap())
}

/// Strategy: a presentation over `A0, A1, 0` with random short equations,
/// zero-saturated. (3 symbols keep the bounded universes small.)
fn arb_presentation() -> impl Strategy<Value = Presentation> {
    let eq = (arb_word(3, 2), arb_word(3, 2)).prop_map(|(l, r)| Equation::new(l, r));
    proptest::collection::vec(eq, 0..4).prop_map(|eqs| {
        let alphabet = Alphabet::standard(2); // A0 A1 0
        let mut p = Presentation::new(alphabet, eqs).unwrap();
        p.saturate_with_zero_equations();
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `occurrences` and `replace_range` agree.
    #[test]
    fn occurrences_replace_consistent(w in arb_word(3, 8), sub in arb_word(3, 3)) {
        for pos in w.occurrences(&sub) {
            prop_assert!(w.occurs_at(&sub, pos));
            let replaced = w.replace_range(pos, sub.len(), &sub).unwrap();
            prop_assert_eq!(&replaced, &w, "replacing a factor by itself is identity");
        }
        // Positions not reported are not occurrences.
        let hits = w.occurrences(&sub);
        for pos in 0..w.len() {
            prop_assert_eq!(hits.contains(&pos), w.occurs_at(&sub, pos));
        }
    }

    /// Concatenation length and content.
    #[test]
    fn concat_laws(a in arb_word(3, 5), b in arb_word(3, 5)) {
        let ab = a.concat(&b);
        prop_assert_eq!(ab.len(), a.len() + b.len());
        prop_assert!(ab.occurs_at(&a, 0));
        prop_assert!(ab.occurs_at(&b, a.len()));
    }

    /// Found derivations always replay and connect the goal's endpoints.
    #[test]
    fn derivations_replay(p in arb_presentation()) {
        let budget = SearchBudget { max_word_len: 5, max_states: 30_000 };
        if let SearchResult::Found(d) = search_goal_derivation(&p, &budget) {
            let g = p.goal();
            d.verify(&p, &g.lhs, &g.rhs).unwrap();
            // Each replayed word respects the length bound except possibly
            // the endpoints (which are length 1 anyway).
            for w in d.replay(&p).unwrap() {
                prop_assert!(w.len() <= budget.max_word_len);
            }
        }
    }

    /// The bounded congruence closure and the BFS agree on goal
    /// reachability when given the same word-length window (they explore
    /// the same graph).
    #[test]
    fn quotient_and_bfs_agree(p in arb_presentation()) {
        let len_bound = 3;
        let mut q = BoundedQuotient::build(&p, len_bound);
        let bfs = search_goal_derivation(
            &p,
            &SearchBudget { max_word_len: len_bound, max_states: 1_000_000 },
        );
        let bfs_found = matches!(bfs, SearchResult::Found(_));
        prop_assert_eq!(q.goal_identified(&p), Some(bfs_found));
    }

    /// Rewriting produces genuine derivations and never grows words.
    #[test]
    fn rewriting_certificates(p in arb_presentation(), w in arb_word(3, 6)) {
        let rs = RewriteSystem::from_presentation(&p);
        let (nf, d) = rs.normal_form(&w);
        prop_assert!(nf.len() <= w.len());
        let words = d.replay(&p).unwrap();
        prop_assert_eq!(words.first().unwrap(), &w);
        prop_assert_eq!(words.last().unwrap(), &nf);
        // Lengths decrease strictly along the reduction.
        for pair in words.windows(2) {
            prop_assert!(pair[1].len() < pair[0].len());
        }
    }

    /// Evaluation is a homomorphism: `eval(uv) = eval(u) · eval(v)`.
    #[test]
    fn eval_is_homomorphism(
        u in arb_word(2, 5),
        v in arb_word(2, 5),
        n in 2..7usize,
    ) {
        let g = cyclic_nilpotent(n);
        let interp = Interpretation::from_raw([1, 0]); // A0 -> a, 0 -> zero
        let eu = g.eval(&interp, &u).unwrap();
        let ev = g.eval(&interp, &v).unwrap();
        let euv = g.eval(&interp, &u.concat(&v)).unwrap();
        prop_assert_eq!(euv, g.mul(eu, ev));
    }

    /// Families satisfy the Main Lemma's side conditions at every order.
    #[test]
    fn families_are_cancellation_semigroups(n in 2..9usize) {
        for g in [null_semigroup(n), cyclic_nilpotent(n)] {
            prop_assert!(g.check_associative().is_ok());
            prop_assert_eq!(g.zero().map(|z| z.index()), Some(0));
            prop_assert!(g.identity().is_none());
            prop_assert!(has_cancellation_property(&g));
        }
    }

    /// Adjoining an identity: associativity, identity, zero, and — for the
    /// cancellation families — the paper's preservation claim.
    #[test]
    fn adjoin_identity_properties(n in 2..7usize) {
        for g in [null_semigroup(n), cyclic_nilpotent(n)] {
            let (g2, id) = adjoin_identity(&g).unwrap();
            prop_assert!(g2.check_associative().is_ok());
            prop_assert_eq!(g2.identity(), Some(id));
            prop_assert_eq!(
                g2.zero().map(|z| z.index()),
                g.zero().map(|z| z.index())
            );
            prop_assert!(has_cancellation_property(&g2));
        }
    }

    /// Direct products: componentwise structure, zero pairing, and
    /// equation preservation under paired interpretations.
    #[test]
    fn direct_products_behave(n in 2..5usize, m in 2..5usize) {
        let g = null_semigroup(n);
        let h = cyclic_nilpotent(m);
        let p = g.direct_product(&h);
        prop_assert_eq!(p.len(), n * m);
        prop_assert!(p.check_associative().is_ok());
        let zg = g.zero().unwrap();
        let zh = h.zero().unwrap();
        prop_assert_eq!(p.zero(), Some(g.pair_elem(&h, zg, zh)));
        prop_assert!(p.identity().is_none());
        // Componentwise multiplication at a sample of points.
        for a in g.elements() {
            for b in h.elements() {
                let x = g.pair_elem(&h, a, b);
                let xx = p.mul(x, x);
                prop_assert_eq!(
                    xx,
                    g.pair_elem(&h, g.mul(a, a), h.mul(b, b))
                );
            }
        }
        // Equation preservation under the paired interpretation.
        let pres = {
            let alphabet = Alphabet::standard(1);
            let mut pr = Presentation::new(alphabet, vec![]).unwrap();
            pr.saturate_with_zero_equations();
            pr
        };
        let ig = Interpretation::from_raw([1, 0]);
        let ih = Interpretation::from_raw([1, 0]);
        let ip = Interpretation::new(
            ig.elems()
                .iter()
                .zip(ih.elems())
                .map(|(&a, &b)| g.pair_elem(&h, a, b))
                .collect(),
        );
        prop_assert!(properties::satisfies_presentation(&g, &ig, &pres));
        prop_assert!(properties::satisfies_presentation(&h, &ih, &pres));
        prop_assert!(properties::satisfies_presentation(&p, &ip, &pres));
    }

    /// Normalization is stable: a second pass adds nothing.
    #[test]
    fn normalize_stable(p in arb_presentation()) {
        let n1 = normalize(&p).unwrap();
        let n2 = normalize(&n1.presentation).unwrap();
        prop_assert!(n2.definitions.is_empty());
        prop_assert_eq!(
            n1.presentation.equations().len(),
            n2.presentation.equations().len()
        );
        prop_assert!(n1.presentation.is_reduction_ready());
    }

    /// The model searcher only returns certified countermodels, and on
    /// derivable instances it returns nothing (soundness of both sides).
    #[test]
    fn model_search_certified(p in arb_presentation()) {
        let opts = ModelSearchOptions { min_size: 2, max_size: 3, max_nodes: 500_000 };
        let found = find_counter_model(&p, &opts).unwrap();
        if let ModelSearchResult::Found(g, interp) = &found {
            prop_assert!(properties::is_countermodel(g, interp, &p));
            // A countermodel and a derivation cannot coexist.
            let bfs = search_goal_derivation(
                &p,
                &SearchBudget { max_word_len: 6, max_states: 50_000 },
            );
            prop_assert!(
                bfs.derivation().is_none(),
                "derivable instance cannot have a countermodel"
            );
        }
    }

    /// Zero saturation is idempotent and the zero equations all hold in the
    /// families under any interpretation sending the zero symbol to zero.
    #[test]
    fn zero_saturation_semantics(n in 2..6usize, a0_to in 1..4usize) {
        let g = null_semigroup(n.max(a0_to + 1));
        let p = {
            let alphabet = Alphabet::standard(1);
            let mut p = Presentation::new(alphabet, vec![]).unwrap();
            p.saturate_with_zero_equations();
            p
        };
        let interp = Interpretation::from_raw([a0_to, 0]);
        for eq in p.equations() {
            prop_assert!(properties::satisfies_equation(&g, &interp, eq));
        }
    }
}

/// Deterministic spot-check that `Sym` indices round-trip through the
/// quotient's class listing (regression guard for dense-label bookkeeping).
#[test]
fn quotient_classes_contain_their_queries() {
    let p = {
        let alphabet = Alphabet::standard(2);
        let e = Equation::parse("A1 A1 = A0", &alphabet).unwrap();
        let mut p = Presentation::new(alphabet, vec![e]).unwrap();
        p.saturate_with_zero_equations();
        p
    };
    let mut q = BoundedQuotient::build(&p, 3);
    let a0 = Word::single(Sym::new(0));
    let class = q.class_of(&a0).unwrap();
    assert!(class.contains(&a0));
    for w in &class {
        assert_eq!(q.equal(&a0, w), Some(true));
    }
}
