//! Smoke test for the `template_deps::prelude` facade: the re-exports of all
//! three crates must be reachable through the single glob import and work
//! together end-to-end on a tiny word-problem instance.

use template_deps::prelude::*;

/// Chase, reduction-pipeline, and semigroup entry points are all reachable
/// from the prelude and compose on one presentation.
#[test]
fn prelude_spans_all_three_crates() {
    // td_semigroup: build a presentation by hand (not via the parser).
    let alphabet = Alphabet::new(["A0", "A1", "0"], "A0", "0").unwrap();
    let eq1 = Equation::new(
        Word::parse("A1 A1", &alphabet).unwrap(),
        Word::parse("A0", &alphabet).unwrap(),
    );
    let eq2 = Equation::new(
        Word::parse("A1 A1", &alphabet).unwrap(),
        Word::parse("0", &alphabet).unwrap(),
    );
    let p = Presentation::new(alphabet, vec![eq1, eq2])
        .unwrap()
        .zero_saturated();

    // td_semigroup: the word problem side resolves on its own.
    let search = search_derivation(
        &p,
        &Word::parse("A0", p.alphabet()).unwrap(),
        &Word::parse("0", p.alphabet()).unwrap(),
        &SearchBudget::default(),
    );
    let derivation: &Derivation = search.derivation().expect("A0 => A1 A1 => 0");
    assert_eq!(derivation.len(), 2);

    // td_reduction: the full pipeline agrees and certifies.
    let run = solve(&p, &Budgets::default()).unwrap();
    let PipelineOutcome::Implied { proof, .. } = &run.outcome else {
        panic!("expected Implied, got {:?}", run.outcome);
    };
    proof.verify(&run.system).unwrap();

    // td_reduction: the generated system exposes the reduction objects.
    let system: &ReductionSystem = &run.system;
    assert!(!system.deps.is_empty());

    // td_core: run the chase over the generated dependencies directly.
    let d0: &Td = &system.d0;
    assert!(d0.is_embedded());
    let verdict = implies(
        &system.deps,
        d0,
        ChaseBudget {
            max_steps: 20_000,
            max_rows: 20_000,
            max_rounds: 200,
        },
    )
    .unwrap();
    assert!(
        verdict.is_implied(),
        "unguided chase agrees with the pipeline"
    );

    // td_core: satisfaction and instances from the prelude.
    let schema = Schema::new("R", ["A", "B"]).unwrap();
    let mut inst = Instance::new(schema.clone());
    inst.insert_values([0, 1]).unwrap();
    let trivial = TdBuilder::new(schema)
        .antecedent(["x", "y"])
        .unwrap()
        .conclusion(["x", "y"])
        .unwrap()
        .build("trivial")
        .unwrap();
    assert!(satisfies(&inst, &trivial));
}

/// The refuted side of the dichotomy is also reachable end-to-end from the
/// prelude: countermodel search, family constructors, and the verifier.
#[test]
fn prelude_covers_the_refuted_side() {
    let alphabet = Alphabet::standard(1); // one regular symbol A0, plus the zero
    let mut p = Presentation::new(alphabet, vec![]).unwrap();
    p.saturate_with_zero_equations();

    // td_semigroup: an analytic countermodel family applies.
    let g = null_semigroup(2);
    assert!(g.zero().is_some());
    assert!(has_cancellation_property(&g));

    // td_reduction: the default tier settles this on the refuted side via
    // the fast path (also a prelude export), with a replayable reason.
    let fast = solve(&p, &Budgets::default()).unwrap();
    assert!(fast.outcome.is_refuted(), "{:?}", fast.outcome);
    if let PipelineOutcome::FastSettled { verdict } = &fast.outcome {
        assert!(replay(&fast.system, verdict).unwrap());
    }

    // td_reduction: with the fast path off, the pipeline refutes with a
    // certified finite model.
    let opts = SolveOptions {
        fastpath: FastPath::Off,
        ..SolveOptions::default()
    };
    let run = solve_with_opts(&p, &Budgets::default(), opts).unwrap();
    let PipelineOutcome::Refuted { model, report } = &run.outcome else {
        panic!("zero-only instance must be refuted, got {:?}", run.outcome);
    };
    assert!(report.ok(), "{report:?}");
    assert!(verify_counter_model(&run.system, model).ok());

    // td_core: the countermodel separates D from D0 under the core checkers.
    assert!(find_violation(&model.instance, &run.system.d0).is_some());
}
