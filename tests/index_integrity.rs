//! Differential audit of the per-column index invariant under
//! "unification-heavy" workloads.
//!
//! `MatchStrategy::Indexed` trusts `Instance`'s per-column indexes, which
//! are maintained on insert only. The index can therefore only go stale if
//! some mutation path edits rows without inserting — the candidate paths
//! being `EqInstance` merges (union–find collapses), `direct_product`, and
//! chase firings with fresh nulls. This suite drives all of them and
//! checks, at every stage, that (a) `Instance::index_is_consistent`
//! re-derives the exact same index from the tuple store, and (b) the naive
//! full-scan oracle and the indexed planner agree on every verdict — the
//! observable symptom a stale index would produce.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::eq_instance::EqInstance;
use template_deps::td_core::ids::{AttrId, RowId};
use template_deps::td_core::product::{direct_power, direct_product};
use template_deps::td_core::satisfaction::satisfies_with;

fn schema3() -> Schema {
    Schema::new("R", ["A", "B", "C"]).unwrap()
}

/// The unification-heavy fixture: start from a spread-out instance, then
/// collapse value classes aggressively through the partition view (the
/// per-attribute union–finds), and re-materialize.
fn collapsed_instance(n_rows: usize, merges: &[(usize, usize, usize)]) -> Instance {
    let mut eq = EqInstance::new(schema3(), n_rows);
    for &(col, a, b) in merges {
        eq.merge(
            AttrId::new((col % 3) as u32),
            RowId::new((a % n_rows) as u32),
            RowId::new((b % n_rows) as u32),
        )
        .unwrap();
    }
    eq.to_instance()
}

/// Embedded dependencies that chase the fixture hard: one invents
/// C-values for joined (A,B) pairs, one closes B across shared A.
fn chase_tds() -> Vec<Td> {
    let t1 = TdBuilder::new(schema3())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a", "b2", "c2"])
        .unwrap()
        .conclusion(["a", "b", "*"])
        .unwrap()
        .build("invent-c")
        .unwrap();
    let t2 = TdBuilder::new(schema3())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a2", "b", "c2"])
        .unwrap()
        .conclusion(["a", "b", "c2"])
        .unwrap()
        .build("join-b")
        .unwrap();
    vec![t1, t2]
}

/// Runs the chase under one strategy, asserting index integrity on the
/// final state; returns the outcome and the state.
fn chase_with(tds: &[Td], initial: &Instance, strategy: MatchStrategy) -> (ChaseOutcome, Instance) {
    let mut engine = ChaseEngine::new(
        tds,
        initial.clone(),
        ChasePolicy::Restricted,
        ChaseBudget::small(),
    )
    .unwrap()
    .with_strategy(strategy);
    let outcome = engine.run(None);
    let (state, _) = engine.into_parts();
    assert!(
        state.index_is_consistent(),
        "stale index after {strategy:?} chase"
    );
    (outcome, state)
}

#[test]
fn union_find_collapse_then_chase_differential() {
    // A dense merge script: every attribute ends up with few classes.
    let merges: Vec<(usize, usize, usize)> =
        (0..40).map(|i| (i % 3, i % 7, (i * 5 + 2) % 7)).collect();
    let initial = collapsed_instance(7, &merges);
    assert!(
        initial.index_is_consistent(),
        "post-collapse materialization"
    );

    let tds = chase_tds();
    let (naive_out, naive_state) = chase_with(&tds, &initial, MatchStrategy::Naive);
    let (indexed_out, indexed_state) = chase_with(&tds, &initial, MatchStrategy::Indexed);
    assert_eq!(
        naive_out, indexed_out,
        "verdicts must not depend on strategy"
    );
    assert_eq!(
        naive_state.len(),
        indexed_state.len(),
        "states must coincide as sets"
    );
    assert_eq!(naive_state, indexed_state);

    // Satisfaction checks agree on both states under both strategies.
    for td in &tds {
        for state in [&naive_state, &indexed_state] {
            assert_eq!(
                satisfies_with(MatchStrategy::Naive, state, td),
                satisfies_with(MatchStrategy::Indexed, state, td),
            );
        }
    }
}

#[test]
fn products_of_collapsed_instances_keep_index_integrity() {
    let a = collapsed_instance(5, &[(0, 0, 1), (0, 1, 2), (1, 3, 4), (2, 0, 4)]);
    let b = collapsed_instance(4, &[(1, 0, 1), (1, 1, 2), (2, 2, 3)]);
    let (p, _) = direct_product(&a, &b).unwrap();
    assert!(p.index_is_consistent(), "product interning");
    let cube = direct_power(&a, 3).unwrap();
    assert!(cube.index_is_consistent(), "iterated product");

    // Differential check straight through the product.
    for td in chase_tds() {
        assert_eq!(
            satisfies_with(MatchStrategy::Naive, &p, &td),
            satisfies_with(MatchStrategy::Indexed, &p, &td),
        );
    }
}

#[test]
fn roundtrip_through_partition_view_is_consistent() {
    let inst = collapsed_instance(6, &[(0, 0, 5), (1, 1, 4), (2, 2, 3), (0, 1, 2)]);
    let eq = EqInstance::from_instance(&inst);
    let back = eq.to_instance();
    assert!(back.index_is_consistent());
    assert_eq!(back.len(), inst.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random merge scripts: materialization, products and both chase
    /// strategies preserve index integrity and verdict agreement.
    #[test]
    fn random_collapse_differential(
        n_rows in 2..7usize,
        merges in proptest::collection::vec((0..3usize, 0..8usize, 0..8usize), 0..24),
    ) {
        let initial = collapsed_instance(n_rows, &merges);
        prop_assert!(initial.index_is_consistent());
        let tds = chase_tds();
        let (naive_out, naive_state) = chase_with(&tds, &initial, MatchStrategy::Naive);
        let (indexed_out, indexed_state) = chase_with(&tds, &initial, MatchStrategy::Indexed);
        prop_assert_eq!(naive_out, indexed_out);
        prop_assert_eq!(&naive_state, &indexed_state);
        let (p, _) = direct_product(&initial, &initial).unwrap();
        prop_assert!(p.index_is_consistent());
    }
}
