//! Differential audit of the per-column index invariant under
//! "unification-heavy" workloads.
//!
//! `MatchStrategy::Indexed` trusts `Instance`'s per-column indexes, which
//! are maintained on insert only. The index can therefore only go stale if
//! some mutation path edits rows without inserting — the candidate paths
//! being `EqInstance` merges (union–find collapses), `direct_product`, and
//! chase firings with fresh nulls. This suite drives all of them and
//! checks, at every stage, that (a) `Instance::index_is_consistent`
//! re-derives the exact same index from the tuple store, and (b) the naive
//! full-scan oracle and the indexed planner agree on every verdict — the
//! observable symptom a stale index would produce.

use std::collections::HashMap;

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::eq_instance::EqInstance;
use template_deps::td_core::ids::{AttrId, RowId};
use template_deps::td_core::product::{direct_power, direct_product};
use template_deps::td_core::satisfaction::satisfies_with;

/// Re-derives a *naive* value→rows index (plain hash maps, straight off a
/// row scan — the representation the dense arena index replaced) and
/// asserts the instance's dense index, distinct-value counters and active
/// domains agree with it exactly. This deliberately does not trust
/// `Instance::index_is_consistent`: it is an external, independently coded
/// oracle for the same invariant.
fn assert_agrees_with_naive_index(inst: &Instance) {
    let arity = inst.schema().arity();
    let mut expected: Vec<HashMap<Value, Vec<RowId>>> = vec![HashMap::new(); arity];
    for (r, row) in inst.rows() {
        for (c, &v) in row.iter().enumerate() {
            expected[c].entry(v).or_default().push(r);
        }
    }
    for col in inst.schema().attr_ids() {
        let exp = &expected[col.index()];
        assert_eq!(
            inst.distinct_values(col),
            exp.len(),
            "distinct-value counter drifted at {col}"
        );
        assert_eq!(
            inst.active_domain(col),
            exp.keys().copied().collect(),
            "active domain drifted at {col}"
        );
        for (&v, rows) in exp {
            assert_eq!(
                inst.rows_with(col, v),
                &rows[..],
                "dense bucket for {v} at {col} disagrees with the naive index"
            );
        }
        // Values outside the active domain must read as empty, including
        // ids beyond the bucket vector's length.
        let max = exp.keys().map(|v| v.raw()).max().unwrap_or(0);
        assert!(inst.rows_with(col, Value::new(max + 7)).is_empty());
    }
}

fn schema3() -> Schema {
    Schema::new("R", ["A", "B", "C"]).unwrap()
}

/// The unification-heavy fixture: start from a spread-out instance, then
/// collapse value classes aggressively through the partition view (the
/// per-attribute union–finds), and re-materialize.
fn collapsed_instance(n_rows: usize, merges: &[(usize, usize, usize)]) -> Instance {
    let mut eq = EqInstance::new(schema3(), n_rows);
    for &(col, a, b) in merges {
        eq.merge(
            AttrId::new((col % 3) as u32),
            RowId::new((a % n_rows) as u32),
            RowId::new((b % n_rows) as u32),
        )
        .unwrap();
    }
    eq.to_instance()
}

/// Embedded dependencies that chase the fixture hard: one invents
/// C-values for joined (A,B) pairs, one closes B across shared A.
fn chase_tds() -> Vec<Td> {
    let t1 = TdBuilder::new(schema3())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a", "b2", "c2"])
        .unwrap()
        .conclusion(["a", "b", "*"])
        .unwrap()
        .build("invent-c")
        .unwrap();
    let t2 = TdBuilder::new(schema3())
        .antecedent(["a", "b", "c"])
        .unwrap()
        .antecedent(["a2", "b", "c2"])
        .unwrap()
        .conclusion(["a", "b", "c2"])
        .unwrap()
        .build("join-b")
        .unwrap();
    vec![t1, t2]
}

/// Runs the chase under one strategy, asserting index integrity on the
/// final state; returns the outcome and the state.
fn chase_with(tds: &[Td], initial: &Instance, strategy: MatchStrategy) -> (ChaseOutcome, Instance) {
    let mut engine = ChaseEngine::new(
        tds,
        initial.clone(),
        ChasePolicy::Restricted,
        ChaseBudget::small(),
    )
    .unwrap()
    .with_strategy(strategy);
    let outcome = engine.run(None);
    let (state, _) = engine.into_parts();
    assert!(
        state.index_is_consistent(),
        "stale index after {strategy:?} chase"
    );
    (outcome, state)
}

#[test]
fn union_find_collapse_then_chase_differential() {
    // A dense merge script: every attribute ends up with few classes.
    let merges: Vec<(usize, usize, usize)> =
        (0..40).map(|i| (i % 3, i % 7, (i * 5 + 2) % 7)).collect();
    let initial = collapsed_instance(7, &merges);
    assert!(
        initial.index_is_consistent(),
        "post-collapse materialization"
    );

    let tds = chase_tds();
    let (naive_out, naive_state) = chase_with(&tds, &initial, MatchStrategy::Naive);
    let (indexed_out, indexed_state) = chase_with(&tds, &initial, MatchStrategy::Indexed);
    assert_eq!(
        naive_out, indexed_out,
        "verdicts must not depend on strategy"
    );
    assert_eq!(
        naive_state.len(),
        indexed_state.len(),
        "states must coincide as sets"
    );
    assert_eq!(naive_state, indexed_state);

    // Satisfaction checks agree on both states under both strategies.
    for td in &tds {
        for state in [&naive_state, &indexed_state] {
            assert_eq!(
                satisfies_with(MatchStrategy::Naive, state, td),
                satisfies_with(MatchStrategy::Indexed, state, td),
            );
        }
    }
}

#[test]
fn products_of_collapsed_instances_keep_index_integrity() {
    let a = collapsed_instance(5, &[(0, 0, 1), (0, 1, 2), (1, 3, 4), (2, 0, 4)]);
    let b = collapsed_instance(4, &[(1, 0, 1), (1, 1, 2), (2, 2, 3)]);
    let (p, _) = direct_product(&a, &b).unwrap();
    assert!(p.index_is_consistent(), "product interning");
    let cube = direct_power(&a, 3).unwrap();
    assert!(cube.index_is_consistent(), "iterated product");

    // Differential check straight through the product.
    for td in chase_tds() {
        assert_eq!(
            satisfies_with(MatchStrategy::Naive, &p, &td),
            satisfies_with(MatchStrategy::Indexed, &p, &td),
        );
    }
}

#[test]
fn roundtrip_through_partition_view_is_consistent() {
    let inst = collapsed_instance(6, &[(0, 0, 5), (1, 1, 4), (2, 2, 3), (0, 1, 2)]);
    let eq = EqInstance::from_instance(&inst);
    let back = eq.to_instance();
    assert!(back.index_is_consistent());
    assert_eq!(back.len(), inst.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random merge scripts: materialization, products and both chase
    /// strategies preserve index integrity and verdict agreement.
    #[test]
    fn random_collapse_differential(
        n_rows in 2..7usize,
        merges in proptest::collection::vec((0..3usize, 0..8usize, 0..8usize), 0..24),
    ) {
        let initial = collapsed_instance(n_rows, &merges);
        prop_assert!(initial.index_is_consistent());
        let tds = chase_tds();
        let (naive_out, naive_state) = chase_with(&tds, &initial, MatchStrategy::Naive);
        let (indexed_out, indexed_state) = chase_with(&tds, &initial, MatchStrategy::Indexed);
        prop_assert_eq!(naive_out, indexed_out);
        prop_assert_eq!(&naive_state, &indexed_state);
        let (p, _) = direct_product(&initial, &initial).unwrap();
        prop_assert!(p.index_is_consistent());
    }

    /// Random insert/merge/product scripts against the naive-index oracle:
    /// at every stage — raw inserts (with duplicates), union–find collapse
    /// and re-materialization, direct product, and a chase run — the dense
    /// arena indexes must agree with a freshly re-derived naive index, and
    /// `index_is_consistent` must keep holding.
    #[test]
    fn random_scripts_agree_with_rederived_naive_index(
        inserts in proptest::collection::vec((0..6u32, 0..6u32, 0..6u32), 1..20),
        dup_every in 1..4usize,
        merges in proptest::collection::vec((0..3usize, 0..8usize, 0..8usize), 0..16),
    ) {
        // Stage 1: raw inserts, re-inserting every `dup_every`-th row to
        // exercise the slice-keyed dedup path.
        let mut inst = Instance::new(schema3());
        for (i, &(a, b, c)) in inserts.iter().enumerate() {
            inst.insert_values([a, b, c]).unwrap();
            if i % dup_every == 0 {
                let (_, fresh) = inst.insert_values([a, b, c]).unwrap();
                prop_assert!(!fresh, "duplicate re-insert must dedup");
            }
        }
        assert_agrees_with_naive_index(&inst);
        prop_assert!(inst.index_is_consistent());

        // Stage 2: collapse through the partition view and re-materialize.
        let mut eq = EqInstance::from_instance(&inst);
        for &(col, a, b) in &merges {
            let n = eq.len();
            eq.merge(
                AttrId::new((col % 3) as u32),
                RowId::new((a % n) as u32),
                RowId::new((b % n) as u32),
            )
            .unwrap();
        }
        let collapsed = eq.to_instance();
        assert_agrees_with_naive_index(&collapsed);
        prop_assert!(collapsed.index_is_consistent());

        // Stage 3: product interning.
        let (prod, _) = direct_product(&collapsed, &inst).unwrap();
        assert_agrees_with_naive_index(&prod);
        prop_assert!(prod.index_is_consistent());

        // Stage 4: chase the collapsed fixture (both strategies); the
        // final states must still agree with the naive oracle.
        let tds = chase_tds();
        let (_, naive_state) = chase_with(&tds, &collapsed, MatchStrategy::Naive);
        let (_, indexed_state) = chase_with(&tds, &collapsed, MatchStrategy::Indexed);
        assert_agrees_with_naive_index(&naive_state);
        assert_agrees_with_naive_index(&indexed_state);
        prop_assert_eq!(&naive_state, &indexed_state);
    }
}
