//! The engine under concurrency: N threads of duplicate-heavy mixed
//! requests through one shared [`Engine`] must produce
//!
//! * **deterministic verdicts** — every thread sees the same answer for
//!   the same instance as a sequential replay;
//! * **monotone stats** — cumulative counters sampled mid-run never go
//!   backwards;
//! * **deterministic cache-hit accounting** — thanks to the engine's
//!   single-flight gate, the (requests, solved, cache_hits) triple equals
//!   a sequential replay of the same request multiset, regardless of
//!   scheduling.

use template_deps::prelude::*;
use template_deps::td_reduction::engine::{Engine, EngineStats};

/// Builds a presentation from renamed symbol tables, so each base
/// instance gets `copies` disguised isomorphic variants (same structure,
/// fresh names — the canonical key must collapse them).
fn instance(names: &[&str], a0: &str, zero: &str, eqs: &[&str]) -> Presentation {
    let alphabet = Alphabet::new(names.iter().map(|s| s.to_string()), a0, zero).unwrap();
    let eqs = eqs
        .iter()
        .map(|e| Equation::parse(e, &alphabet).unwrap())
        .collect();
    Presentation::new(alphabet, eqs).unwrap()
}

/// Four cheap-to-solve base classes × three disguises each: 12 requests,
/// 4 unique canonical keys. All four settle (two implied, two refuted),
/// so every class is cacheable.
fn corpus() -> Vec<Presentation> {
    let mut items = Vec::new();
    for i in 0..3 {
        let (s, g, z) = (format!("s{i}"), format!("g{i}"), format!("z{i}"));
        // Implied: g·g = s and g·g = z force s ⇒ z.
        items.push(instance(
            &[&s, &g, &z],
            &s,
            &z,
            &[&format!("{g} {g} = {s}"), &format!("{g} {g} = {z}")],
        ));
        // Implied: a relabelling chain s ⇒ m ⇒ z.
        let m = format!("m{i}");
        items.push(instance(
            &[&s, &m, &z],
            &s,
            &z,
            &[&format!("{s} = {m}"), &format!("{m} = {z}")],
        ));
        // Refuted: free one-generator presentation (null shortcut).
        items.push(instance(&[&s, &z], &s, &z, &[]));
        // Refuted: a single product equation sent to zero.
        items.push(instance(
            &[&s, &g, &z],
            &s,
            &z,
            &[&format!("{s} {g} = {z}")],
        ));
    }
    items
}

/// Replays `requests` sequentially on a fresh engine, returning verdicts
/// and final stats — the accounting oracle the concurrent run must match.
fn sequential_replay(requests: &[&Presentation]) -> (Vec<BatchVerdict>, EngineStats) {
    let engine = Engine::new();
    let verdicts = requests
        .iter()
        .map(|p| engine.decide(p).expect("sequential decide").verdict)
        .collect();
    (verdicts, engine.stats())
}

/// Asserts every monotone counter in `later` is at least `earlier`'s.
fn assert_monotone(earlier: &EngineStats, later: &EngineStats) {
    assert!(
        later.requests >= earlier.requests,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.cache_hits >= earlier.cache_hits,
        "{earlier:?} -> {later:?}"
    );
    assert!(later.solved >= earlier.solved, "{earlier:?} -> {later:?}");
    assert!(
        later.evictions >= earlier.evictions,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.derivation_states >= earlier.derivation_states,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.model_nodes >= earlier.model_nodes,
        "{earlier:?} -> {later:?}"
    );
}

#[test]
fn concurrent_mixed_requests_match_sequential_replay() {
    const THREADS: usize = 4;
    let items = corpus();

    // The request multiset: every thread decides the full corpus, each
    // starting at a different rotation so identical keys collide in time.
    let n = items.len();
    let all_requests: Vec<&Presentation> = (0..THREADS)
        .flat_map(|t| (0..n).map(move |i| (i + t * 3) % n))
        .map(|ix| &items[ix])
        .collect();
    let (expected_verdicts, expected_stats) = sequential_replay(&all_requests);
    assert_eq!(expected_stats.requests, (THREADS * items.len()) as u64);
    assert_eq!(expected_stats.solved, 4, "one solve per isomorphism class");
    assert_eq!(
        expected_stats.cache_hits,
        expected_stats.requests - expected_stats.solved
    );

    // Concurrent run: same multiset, THREADS workers, one shared engine,
    // with a monitor thread sampling the stats for monotonicity.
    let engine = Engine::new();
    let stop_monitor = td_core::budget::Cancellation::new();
    let per_thread: Vec<Vec<BatchVerdict>> = std::thread::scope(|s| {
        let monitor = s.spawn(|| {
            let mut last = engine.stats();
            let mut samples = 0u32;
            while !stop_monitor.is_cancelled() {
                let now = engine.stats();
                assert_monotone(&last, &now);
                last = now;
                samples += 1;
                std::thread::yield_now();
            }
            samples
        });
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let items = &items;
                let engine = &engine;
                s.spawn(move || {
                    let n = items.len();
                    (0..n)
                        .map(|i| {
                            engine
                                .decide(&items[(i + t * 3) % n])
                                .expect("concurrent decide")
                                .verdict
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop_monitor.cancel();
        let samples = monitor.join().unwrap();
        assert!(samples > 0, "the monitor observed the run");
        results
    });

    // Deterministic verdicts: thread t's i-th answer equals the
    // sequential replay's answer for the same request.
    for (t, verdicts) in per_thread.iter().enumerate() {
        assert_eq!(
            verdicts,
            &expected_verdicts[t * items.len()..(t + 1) * items.len()],
            "thread {t} diverged from the sequential replay"
        );
    }

    // Deterministic accounting: single-flight makes the concurrent triple
    // equal the sequential replay's, not merely bounded by it.
    let stats = engine.stats();
    assert_eq!(stats.requests, expected_stats.requests);
    assert_eq!(stats.solved, expected_stats.solved);
    assert_eq!(stats.cache_hits, expected_stats.cache_hits);
    assert_eq!(stats.keys_cached, 4);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn concurrent_batches_share_one_engine_consistently() {
    // Batches dedup internally, share the cross-request cache, and their
    // workers go through the same single-flight gate as decide — so even
    // three identical batches racing each other run the solver exactly
    // once per isomorphism class, engine-wide.
    let items = corpus();
    let engine = Engine::new();
    let runs: Vec<BatchRun> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| s.spawn(|| engine.solve_batch(&items).expect("batch")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let oracle = Engine::new().solve_batch(&items).expect("oracle batch");
    for run in &runs {
        assert_eq!(
            run.verdicts, oracle.verdicts,
            "verdicts are scheduling-free"
        );
        assert_eq!(run.keys, oracle.keys);
        assert_eq!(run.stats.total, items.len());
        assert_eq!(run.stats.unique, 4);
        assert_eq!(run.stats.cache_hits + run.stats.solved, run.stats.total);
    }

    let stats = engine.stats();
    assert_eq!(stats.requests, (3 * items.len()) as u64);
    assert_eq!(stats.cache_hits + stats.solved, stats.requests);
    assert_eq!(
        stats.solved, 4,
        "single-flight: one solver run per class across all racing batches"
    );
    assert_eq!(stats.keys_cached, 4);

    // A warm follow-up batch is all hits.
    let warm = engine.solve_batch(&items).expect("warm batch");
    assert_eq!(warm.stats.solved, 0);
    assert_eq!(warm.stats.cache_hits, items.len());
}

#[test]
fn shutdown_during_concurrent_traffic_is_clean() {
    // Threads hammer the engine while another thread shuts it down:
    // every call must return either a verdict or the structured ShutDown
    // error — no deadlock, no panic — and the engine refuses new solving
    // work afterwards.
    let items = corpus();
    let engine = Engine::new();
    let outcomes: Vec<Result<Decision, RedError>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let items = &items;
                let engine = &engine;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..6 {
                        for (i, p) in items.iter().enumerate() {
                            if (i + round) % items.len() == t {
                                out.push(engine.decide(p));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        s.spawn(|| {
            std::thread::yield_now();
            engine.shutdown();
        });
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(engine.is_shut_down());
    for outcome in outcomes {
        match outcome {
            Ok(d) => assert!(matches!(
                d.verdict,
                BatchVerdict::Implied { .. }
                    | BatchVerdict::Refuted { .. }
                    | BatchVerdict::Unknown { .. }
            )),
            Err(e) => assert!(matches!(e, RedError::ShutDown), "unexpected error {e}"),
        }
    }
    assert!(matches!(engine.mint(None), Err(RedError::ShutDown)));
}
