//! The engine under concurrency: N threads of duplicate-heavy mixed
//! requests through one shared [`Engine`] must produce
//!
//! * **deterministic verdicts** — every thread sees the same answer for
//!   the same instance as a sequential replay;
//! * **monotone stats** — cumulative counters sampled mid-run never go
//!   backwards;
//! * **deterministic cache-hit accounting** — thanks to the engine's
//!   single-flight gate, the (requests, solved, cache_hits) triple equals
//!   a sequential replay of the same request multiset, regardless of
//!   scheduling.

use template_deps::prelude::*;
use template_deps::td_core::ids::Var;
use template_deps::td_core::td::TdRow;
use template_deps::td_reduction::engine::{Engine, EngineConfig, EngineStats};

/// Builds a presentation from renamed symbol tables, so each base
/// instance gets `copies` disguised isomorphic variants (same structure,
/// fresh names — the canonical key must collapse them).
fn instance(names: &[&str], a0: &str, zero: &str, eqs: &[&str]) -> Presentation {
    let alphabet = Alphabet::new(names.iter().map(|s| s.to_string()), a0, zero).unwrap();
    let eqs = eqs
        .iter()
        .map(|e| Equation::parse(e, &alphabet).unwrap())
        .collect();
    Presentation::new(alphabet, eqs).unwrap()
}

/// Four cheap-to-solve base classes × three disguises each: 12 requests,
/// 4 unique canonical keys. All four settle (two implied, two refuted),
/// so every class is cacheable.
fn corpus() -> Vec<Presentation> {
    let mut items = Vec::new();
    for i in 0..3 {
        let (s, g, z) = (format!("s{i}"), format!("g{i}"), format!("z{i}"));
        // Implied: g·g = s and g·g = z force s ⇒ z.
        items.push(instance(
            &[&s, &g, &z],
            &s,
            &z,
            &[&format!("{g} {g} = {s}"), &format!("{g} {g} = {z}")],
        ));
        // Implied: a relabelling chain s ⇒ m ⇒ z.
        let m = format!("m{i}");
        items.push(instance(
            &[&s, &m, &z],
            &s,
            &z,
            &[&format!("{s} = {m}"), &format!("{m} = {z}")],
        ));
        // Refuted: free one-generator presentation (null shortcut).
        items.push(instance(&[&s, &z], &s, &z, &[]));
        // Refuted: a single product equation sent to zero.
        items.push(instance(
            &[&s, &g, &z],
            &s,
            &z,
            &[&format!("{s} {g} = {z}")],
        ));
    }
    items
}

/// Replays `requests` sequentially on a fresh engine, returning verdicts
/// and final stats — the accounting oracle the concurrent run must match.
fn sequential_replay(requests: &[&Presentation]) -> (Vec<BatchVerdict>, EngineStats) {
    let engine = Engine::new();
    let verdicts = requests
        .iter()
        .map(|p| engine.decide(p).expect("sequential decide").verdict)
        .collect();
    (verdicts, engine.stats())
}

/// Asserts every monotone counter in `later` is at least `earlier`'s.
fn assert_monotone(earlier: &EngineStats, later: &EngineStats) {
    assert!(
        later.requests >= earlier.requests,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.cache_hits >= earlier.cache_hits,
        "{earlier:?} -> {later:?}"
    );
    assert!(later.solved >= earlier.solved, "{earlier:?} -> {later:?}");
    assert!(
        later.evictions >= earlier.evictions,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.derivation_states >= earlier.derivation_states,
        "{earlier:?} -> {later:?}"
    );
    assert!(
        later.model_nodes >= earlier.model_nodes,
        "{earlier:?} -> {later:?}"
    );
}

#[test]
fn concurrent_mixed_requests_match_sequential_replay() {
    const THREADS: usize = 4;
    let items = corpus();

    // The request multiset: every thread decides the full corpus, each
    // starting at a different rotation so identical keys collide in time.
    let n = items.len();
    let all_requests: Vec<&Presentation> = (0..THREADS)
        .flat_map(|t| (0..n).map(move |i| (i + t * 3) % n))
        .map(|ix| &items[ix])
        .collect();
    let (expected_verdicts, expected_stats) = sequential_replay(&all_requests);
    assert_eq!(expected_stats.requests, (THREADS * items.len()) as u64);
    assert_eq!(expected_stats.solved, 4, "one solve per isomorphism class");
    assert_eq!(
        expected_stats.cache_hits,
        expected_stats.requests - expected_stats.solved
    );

    // Concurrent run: same multiset, THREADS workers, one shared engine,
    // with a monitor thread sampling the stats for monotonicity.
    let engine = Engine::new();
    let stop_monitor = td_core::budget::Cancellation::new();
    let per_thread: Vec<Vec<BatchVerdict>> = std::thread::scope(|s| {
        let monitor = s.spawn(|| {
            let mut last = engine.stats();
            let mut samples = 0u32;
            while !stop_monitor.is_cancelled() {
                let now = engine.stats();
                assert_monotone(&last, &now);
                last = now;
                samples += 1;
                std::thread::yield_now();
            }
            samples
        });
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let items = &items;
                let engine = &engine;
                s.spawn(move || {
                    let n = items.len();
                    (0..n)
                        .map(|i| {
                            engine
                                .decide(&items[(i + t * 3) % n])
                                .expect("concurrent decide")
                                .verdict
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results = workers.into_iter().map(|w| w.join().unwrap()).collect();
        stop_monitor.cancel();
        let samples = monitor.join().unwrap();
        assert!(samples > 0, "the monitor observed the run");
        results
    });

    // Deterministic verdicts: thread t's i-th answer equals the
    // sequential replay's answer for the same request.
    for (t, verdicts) in per_thread.iter().enumerate() {
        assert_eq!(
            verdicts,
            &expected_verdicts[t * items.len()..(t + 1) * items.len()],
            "thread {t} diverged from the sequential replay"
        );
    }

    // Deterministic accounting: single-flight makes the concurrent triple
    // equal the sequential replay's, not merely bounded by it.
    let stats = engine.stats();
    assert_eq!(stats.requests, expected_stats.requests);
    assert_eq!(stats.solved, expected_stats.solved);
    assert_eq!(stats.cache_hits, expected_stats.cache_hits);
    assert_eq!(stats.keys_cached, 4);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn concurrent_batches_share_one_engine_consistently() {
    // Batches dedup internally, share the cross-request cache, and their
    // workers go through the same single-flight gate as decide — so even
    // three identical batches racing each other run the solver exactly
    // once per isomorphism class, engine-wide.
    let items = corpus();
    let engine = Engine::new();
    let runs: Vec<BatchRun> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| s.spawn(|| engine.solve_batch(&items).expect("batch")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let oracle = Engine::new().solve_batch(&items).expect("oracle batch");
    for run in &runs {
        assert_eq!(
            run.verdicts, oracle.verdicts,
            "verdicts are scheduling-free"
        );
        assert_eq!(run.keys, oracle.keys);
        assert_eq!(run.stats.total, items.len());
        assert_eq!(run.stats.unique, 4);
        assert_eq!(run.stats.cache_hits + run.stats.solved, run.stats.total);
    }

    let stats = engine.stats();
    assert_eq!(stats.requests, (3 * items.len()) as u64);
    assert_eq!(stats.cache_hits + stats.solved, stats.requests);
    assert_eq!(
        stats.solved, 4,
        "single-flight: one solver run per class across all racing batches"
    );
    assert_eq!(stats.keys_cached, 4);

    // A warm follow-up batch is all hits.
    let warm = engine.solve_batch(&items).expect("warm batch");
    assert_eq!(warm.stats.solved, 0);
    assert_eq!(warm.stats.cache_hits, items.len());
}

#[test]
fn shutdown_during_concurrent_traffic_is_clean() {
    // Threads hammer the engine while another thread shuts it down:
    // every call must return either a verdict or the structured ShutDown
    // error — no deadlock, no panic — and the engine refuses new solving
    // work afterwards.
    let items = corpus();
    let engine = Engine::new();
    let outcomes: Vec<Result<Decision, RedError>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let items = &items;
                let engine = &engine;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..6 {
                        for (i, p) in items.iter().enumerate() {
                            if (i + round) % items.len() == t {
                                out.push(engine.decide(p));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        s.spawn(|| {
            std::thread::yield_now();
            engine.shutdown();
        });
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(engine.is_shut_down());
    for outcome in outcomes {
        match outcome {
            Ok(d) => assert!(matches!(
                d.verdict,
                BatchVerdict::Implied { .. }
                    | BatchVerdict::Refuted { .. }
                    | BatchVerdict::Unknown { .. }
            )),
            Err(e) => assert!(matches!(e, RedError::ShutDown), "unexpected error {e}"),
        }
    }
    assert!(matches!(engine.mint(None), Err(RedError::ShutDown)));
}

// ---------------------------------------------------------------------
// Σ-sessions under concurrency.
// ---------------------------------------------------------------------

/// A full TD over the binary schema `R(C0, C1)` from variable-index rows.
fn session_td(name: &str, antecedents: &[[u32; 2]], conclusion: [u32; 2]) -> Td {
    let schema = Schema::new("R", ["C0", "C1"]).unwrap();
    let rows: Vec<TdRow> = antecedents
        .iter()
        .map(|r| TdRow::new(r.iter().map(|&v| Var::new(v))))
        .collect();
    let concl = TdRow::new(conclusion.iter().map(|&v| Var::new(v)));
    Td::new(schema, rows, concl, name).unwrap()
}

/// Pseudo-transitivity `R(a,b) & R(a',b) & R(a',b') -> R(a,b')`: fires only
/// across rows connected through a shared column value.
fn pt() -> Td {
    session_td("pt", &[[0, 0], [1, 0], [1, 1]], [0, 1])
}

/// The product TD `R(a,b) & R(a',b') -> R(a,b')`: its frozen tableau is two
/// *disconnected* rows, which no connected-antecedent TD can ever join.
fn prod() -> Td {
    session_td("prod", &[[0, 0], [1, 1]], [0, 1])
}

#[test]
fn shared_session_clients_match_a_serialized_replay() {
    // Two clients hammer ONE session: a reader asking two goals over and
    // over, and a writer growing Σ with longer pseudo-transitivity chains
    // between its own asks. The goals are chosen so their verdicts are
    // invariant under every interleaving — `pt ∈ Σ` throughout (asks stay
    // implied under adds: monotone), and `prod`'s disconnected tableau is
    // unreachable by any connected chain (stays refuted) — so EVERY
    // serialized replay of the ops gives the same verdict sequence, and the
    // concurrent run must reproduce it exactly.
    let chains: Vec<Td> = (0..4)
        .map(|i| {
            session_td(
                &format!("chain{i}"),
                &[[0, 0], [1, 0], [1, 1], [2 + i, 1]],
                [2 + i, 0],
            )
        })
        .collect();
    let engine = Engine::new();
    engine.session_open("shared").unwrap();
    engine.session_add_deps("shared", &[pt()]).unwrap();

    let (reader_verdicts, writer_verdicts) = std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let engine = &engine;
            (0..24)
                .map(|i| {
                    let goal = if i % 2 == 0 { pt() } else { prod() };
                    engine.session_ask("shared", &goal).expect("reader ask").0
                })
                .collect::<Vec<_>>()
        });
        let writer = s.spawn(|| {
            let engine = &engine;
            let mut verdicts = Vec::new();
            for td in &chains {
                engine
                    .session_add_deps("shared", std::slice::from_ref(td))
                    .expect("writer add");
                verdicts.push(engine.session_ask("shared", &pt()).expect("writer ask").0);
                verdicts.push(engine.session_ask("shared", &prod()).expect("writer ask").0);
            }
            verdicts
        });
        (reader.join().unwrap(), writer.join().unwrap())
    });

    for (i, v) in reader_verdicts.iter().enumerate() {
        if i % 2 == 0 {
            assert!(
                matches!(v, SessionVerdict::Implied { .. }),
                "reader ask {i}: pt must stay implied, got {v:?}"
            );
        } else {
            assert!(
                matches!(v, SessionVerdict::NotImplied { .. }),
                "reader ask {i}: prod must stay refuted, got {v:?}"
            );
        }
    }
    for pair in writer_verdicts.chunks(2) {
        assert!(matches!(pair[0], SessionVerdict::Implied { .. }));
        assert!(matches!(pair[1], SessionVerdict::NotImplied { .. }));
    }
    // The writer's adds all landed: 1 (pt) + 4 chains.
    assert_eq!(
        engine.session_remove_dep("shared", "chain3").unwrap(),
        4,
        "all five dependencies were resident"
    );
}

#[test]
fn eviction_under_traffic_never_panics_in_flight_asks() {
    // A tiny registry (2 slots) under open-heavy traffic: askers racing
    // against waves of fresh opens must either get a verdict (their Arc
    // keeps an evicted session alive through the ask) or the structured
    // `unknown session` error — never a panic, poison, or deadlock.
    let engine = Engine::with_config(EngineConfig {
        max_sessions: 2,
        ..EngineConfig::default()
    });
    engine.session_open("hot").unwrap();
    engine.session_add_deps("hot", &[pt()]).unwrap();

    let errors: Vec<RedError> = std::thread::scope(|s| {
        let asker = s.spawn(|| {
            let engine = &engine;
            let mut errors = Vec::new();
            for _ in 0..64 {
                match engine.session_ask("hot", &pt()) {
                    Ok((verdict, _)) => assert!(
                        matches!(verdict, SessionVerdict::Implied { .. }),
                        "a surviving `hot` session still has pt ∈ Σ"
                    ),
                    Err(e) => errors.push(e),
                }
            }
            errors
        });
        let churners: Vec<_> = (0..2)
            .map(|t| {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..32 {
                        let id = format!("churn-{t}-{i}");
                        engine.session_open(&id).expect("open evicts, never fails");
                        // Some churn sessions do real work before dying.
                        if i % 4 == 0 {
                            let _ = engine.session_add_deps(&id, &[prod()]);
                            let _ = engine.session_ask(&id, &prod());
                        }
                    }
                })
            })
            .collect();
        for c in churners {
            c.join().unwrap();
        }
        asker.join().unwrap()
    });

    for e in &errors {
        assert!(
            matches!(e, RedError::Session(msg) if msg.contains("unknown session")),
            "asks on an evicted session fail structurally, got {e}"
        );
    }
    let stats = engine.session_stats();
    assert!(
        stats.evictions > 0,
        "2 slots under 64 opens must evict: {stats:?}"
    );
    assert!(stats.open <= 2, "the bound holds at rest: {stats:?}");
}
