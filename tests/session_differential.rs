//! Session-vs-scratch differential harness for incremental Σ-sessions.
//!
//! A session answers `Σ ⊨ τ` by resuming a suspended chase and pruning its
//! verdict cache monotonically as Σ changes; a session-less client answers
//! the same question by chasing from scratch. The two must never disagree.
//! This harness replays random session scripts — open, interleaved
//! `add_dep`/`remove_dep` mutations, repeated asks — and pins **every**
//! `session_ask` verdict against a fresh [`implies`] run over the script's
//! shadow copy of the current Σ:
//!
//! * the verdict kind must match exactly (`Implied`/`NotImplied`);
//! * for freshly computed refutations the countermodel row count must equal
//!   the from-scratch closure size (full TDs chase to a unique fixpoint);
//! * verdicts answered from the session cache are compared by kind only — a
//!   `NotImplied` cached before a removal is still a *valid* countermodel
//!   for the smaller Σ, but a larger one than scratch would build.
//!
//! The script pools contain only **full** TDs (no existentials), so every
//! chase terminates inside the default budget and the fixpoint is unique —
//! `chase_steps` may still differ from scratch (the resumed chase stops at
//! the goal earlier or later), which is exactly why it is not compared.

use proptest::prelude::*;
use template_deps::prelude::*;
use template_deps::td_core::ids::{AttrId, Var};
use template_deps::td_core::inference::{implies, InferenceVerdict};
use template_deps::td_core::td::TdRow;

const ARITY: usize = 2;

fn schema() -> Schema {
    Schema::new("R", (0..ARITY).map(|i| format!("C{i}"))).unwrap()
}

/// Builds a TD from variable-index rows: `vars[r][c]` is the variable used
/// in row `r`, column `c` (shared indices share a variable; columns have
/// disjoint variable spaces, so the same index in different columns is fine).
fn td(name: &str, antecedents: &[[u32; ARITY]], conclusion: [u32; ARITY]) -> Td {
    let rows: Vec<TdRow> = antecedents
        .iter()
        .map(|r| TdRow::new(r.iter().map(|&v| Var::new(v))))
        .collect();
    let concl = TdRow::new(conclusion.iter().map(|&v| Var::new(v)));
    Td::new(schema(), rows, concl, name).unwrap()
}

/// Strategy: a pool of `count` random **full** TDs named `{prefix}0..` —
/// 1–3 antecedent rows, small per-column variable pools, and a conclusion
/// that only reuses antecedent variables of the same column (so the chase
/// never invents values and always terminates on a unique closure).
fn arb_full_td_pool(count: usize, prefix: &'static str) -> impl Strategy<Value = Vec<Td>> {
    proptest::collection::vec(
        (
            1..=3usize,
            1..=3u32,
            proptest::collection::vec(0..100u32, ARITY * 3 + ARITY),
        ),
        count..=count,
    )
    .prop_map(move |specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (n_rows, n_vars, picks))| {
                let mut it = picks.into_iter();
                let antecedents: Vec<TdRow> = (0..n_rows)
                    .map(|_| TdRow::new((0..ARITY).map(|_| Var::new(it.next().unwrap() % n_vars))))
                    .collect();
                let conclusion = TdRow::new((0..ARITY).map(|c| {
                    let pick = it.next().unwrap() as usize;
                    antecedents[pick % n_rows].get(AttrId::from(c))
                }));
                Td::new(schema(), antecedents, conclusion, format!("{prefix}{i}")).unwrap()
            })
            .collect()
    })
}

/// One script step: `kind % 4` selects the op (add / remove / ask / ask —
/// asks are twice as likely), `pick` selects the TD or goal.
type Step = (u32, u32);

/// Replays `script` against a real session and a shadow Σ, pinning every
/// ask against a from-scratch [`implies`] run. Returns an error description
/// on the first divergence.
fn replay_and_check(deps: &[Td], goals: &[Td], script: &[Step]) -> Result<(), TestCaseError> {
    let engine = Engine::new();
    engine.session_open("s").unwrap();
    let mut shadow: Vec<Td> = Vec::new();
    for &(kind, pick) in script {
        match kind % 4 {
            0 => {
                let td = &deps[pick as usize % deps.len()];
                let dup = shadow.iter().any(|t| t.name() == td.name());
                let r = engine.session_add_deps("s", std::slice::from_ref(td));
                if dup {
                    prop_assert!(r.is_err(), "duplicate add of `{}` accepted", td.name());
                } else {
                    prop_assert_eq!(r.unwrap(), shadow.len() + 1);
                    shadow.push(td.clone());
                }
            }
            1 => {
                let name = deps[pick as usize % deps.len()].name().to_owned();
                let pos = shadow.iter().position(|t| t.name() == name);
                let r = engine.session_remove_dep("s", &name);
                match pos {
                    Some(p) => {
                        prop_assert_eq!(r.unwrap(), shadow.len() - 1);
                        shadow.remove(p);
                    }
                    None => prop_assert!(r.is_err(), "removed absent `{name}`"),
                }
            }
            _ => {
                let goal = &goals[pick as usize % goals.len()];
                let (verdict, cached) = engine.session_ask("s", goal).unwrap();
                let oracle = implies(&shadow, goal, ChaseBudget::default()).unwrap();
                match (&verdict, &oracle) {
                    (SessionVerdict::Implied { .. }, InferenceVerdict::Implied(_)) => {}
                    (
                        SessionVerdict::NotImplied { model_rows },
                        InferenceVerdict::NotImplied(inst),
                    ) => {
                        if !cached {
                            prop_assert_eq!(
                                *model_rows,
                                inst.len(),
                                "fresh refutation row count diverges from scratch \
                                 on goal `{}` with |Σ|={}",
                                goal.name(),
                                shadow.len()
                            );
                        }
                    }
                    // The oracle giving up is a budget artifact the resumed
                    // (strictly cheaper) session side may legitimately beat;
                    // the session giving up where scratch settles is not.
                    (_, InferenceVerdict::Unknown(_)) => {}
                    (v, o) => {
                        return Err(TestCaseError::fail(format!(
                            "session {v:?} vs scratch {o:?} on goal `{}` \
                             (cached={cached}) with Σ = {:?}",
                            goal.name(),
                            shadow.iter().map(Td::name).collect::<Vec<_>>()
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole's correctness contract: on random session scripts over
    /// random full-TD pools, every incremental verdict equals the verdict
    /// a from-scratch chase gives on the current Σ.
    #[test]
    fn random_session_scripts_match_scratch(
        deps in arb_full_td_pool(4, "d"),
        goals in arb_full_td_pool(3, "g"),
        script in proptest::collection::vec((0..8u32, 0..12u32), 1..=16),
    ) {
        replay_and_check(&deps, &goals, &script)?;
    }
}

// ---------------------------------------------------------------------
// Named regression scripts: deterministic sequences that exercise each
// invalidation direction and the resume path explicitly.
// ---------------------------------------------------------------------

/// Product TD: `R(a,b) & R(a',b') -> R(a,b')` — implies every full TD.
fn prod() -> Td {
    td("prod", &[[0, 0], [1, 1]], [0, 1])
}

/// Pseudo-transitivity: `R(a,b) & R(a',b) & R(a',b') -> R(a,b')` — closes
/// only connected components; strictly weaker than `prod`.
fn pt() -> Td {
    td("pt", &[[0, 0], [1, 0], [1, 1]], [0, 1])
}

#[test]
fn ask_add_ask_follows_the_growing_sigma() {
    let deps = [pt(), prod()];
    let goals = [pt(), prod()];
    // ask pt, ask prod (both refuted under ∅), add pt, re-ask both (pt now
    // implied via resume, prod still refuted), add prod, re-ask both.
    let script: Vec<(u32, u32)> = vec![
        (2, 0),
        (2, 1),
        (0, 0),
        (2, 0),
        (2, 1),
        (0, 1),
        (2, 0),
        (2, 1),
    ];
    replay_and_check(&deps, &goals, &script).unwrap();
}

#[test]
fn removal_falls_back_to_scratch() {
    let deps = [pt(), prod()];
    let goals = [prod()];
    // add pt, ask prod (refuted: pt alone cannot close the disconnected
    // product tableau), add prod, ask (implied), remove prod, ask (the
    // implied verdict and the parked chase are gone — a scratch re-chase
    // refutes again), remove pt, ask under ∅.
    let script: Vec<(u32, u32)> = vec![
        (0, 0),
        (2, 0),
        (0, 1),
        (2, 0),
        (1, 1),
        (2, 0),
        (1, 0),
        (2, 0),
    ];
    replay_and_check(&deps, &goals, &script).unwrap();
}

#[test]
fn isomorphic_goals_share_one_verdict() {
    // `pt2` is `pt` with renamed variables and permuted antecedents — same
    // canonical class, so the second ask must be a session-cache hit with
    // the identical verdict.
    let pt2 = td("pt-renamed", &[[7, 3], [5, 3], [7, 7]], [5, 7]);
    let engine = Engine::new();
    engine.session_open("s").unwrap();
    engine.session_add_deps("s", &[prod()]).unwrap();
    let (v1, cached1) = engine.session_ask("s", &pt()).unwrap();
    let (v2, cached2) = engine.session_ask("s", &pt2).unwrap();
    assert!(!cached1);
    assert!(cached2, "isomorphic re-ask must hit the session cache");
    assert!(matches!(v1, SessionVerdict::Implied { .. }));
    assert_eq!(
        format!("{v1:?}"),
        format!("{v2:?}"),
        "cached verdict must be byte-identical"
    );
    // And both agree with scratch.
    assert!(implies(&[prod()], &pt2, ChaseBudget::default())
        .unwrap()
        .is_implied());
}
